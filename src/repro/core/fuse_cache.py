"""The FUSE heterogeneous L1D cache engine (Sections III and IV).

One engine, four paper configurations, enabled feature by feature exactly
as the evaluation builds them up (Table I):

==============  ============  ===========  ==========
configuration   non-blocking  approx FA    predictor
==============  ============  ===========  ==========
``Hybrid``      no            no           no
``Base-FUSE``   yes           no           no
``FA-FUSE``     yes           yes          no
``Dy-FUSE``     yes           yes          yes
==============  ============  ===========  ==========

* **non-blocking** adds the swap buffer (3 x 128 B registers) and the
  16-entry tag queue so the SRAM bank keeps serving while the STT-MRAM
  bank digests 5-cycle writes.  Without it, any STT-MRAM write blocks the
  entire L1D (the ``Hybrid`` behaviour the paper measures in Figure 15).
* **approx FA** reorganises the STT-MRAM bank from 256 sets x 2 ways into
  1 set x 512 ways, searched through the CBF-guided associativity
  approximation of Section III-B, with FIFO replacement.
* **predictor** routes fills and evictions through the read-level
  predictor: WM/WORO fills land in SRAM, WORM/read-intensive fills go
  straight to STT-MRAM, WORO SRAM-evictions leave for L2, and a store that
  hits STT-MRAM (a misprediction) migrates its line back to SRAM.

The engine composes the shared primitives of :mod:`repro.cache.engine`:
the SRAM bank is a pipelined :class:`~repro.cache.engine.BankPort`, the
blocking-mode STT-MRAM bank a second (write-occupying) port, the MSHR
discipline a :class:`~repro.cache.engine.MissPath`, and lines leaving
the L1D flow through a :class:`~repro.cache.engine.WritebackSink` that
also scores the read-level predictor (Figure 16).  What remains below
is purely FUSE: probe order, swap buffer + tag queue, the CBF-guided
search, migrations, and the destination arbitration.

Consistency invariant: a block lives in **at most one** of {SRAM bank,
swap buffer + STT tags, STT bank} at any time -- the paper's "only single
data copy exists in either SRAM or STT-MRAM".  While a line is parked in
the swap buffer its tag is already installed in the STT tag array and the
probe order (SRAM, swap buffer, STT) keeps the freshest copy visible; the
integration tests assert the single-copy invariant after every operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cache.engine import BankPort, MissPath, WritebackSink
from repro.cache.interface import (
    RETRY_INTERVAL,
    AccessOutcome,
    AccessResult,
    FillResult,
    L1DCacheModel,
)
from repro.cache.mshr import MSHR
from repro.cache.request import BLOCK_SIZE, MemoryRequest
from repro.cache.tag_array import EvictedLine, TagArray
from repro.core.approx_assoc import ApproximateAssociativeArray
from repro.core.arbitration import Arbiter, Destination
from repro.core.read_level_predictor import ReadLevel, ReadLevelPredictor
from repro.core.swap_buffer import SwapBuffer
from repro.core.tag_queue import TagQueue

__all__ = [
    "FuseCache", "FuseFeatures",
]


@dataclass(frozen=True, slots=True)
class FuseFeatures:
    """Feature toggles selecting the paper configuration (see module docs)."""

    non_blocking: bool = True
    approx_assoc: bool = True
    use_predictor: bool = True

    @classmethod
    def hybrid(cls) -> "FuseFeatures":
        return cls(non_blocking=False, approx_assoc=False, use_predictor=False)

    @classmethod
    def base_fuse(cls) -> "FuseFeatures":
        return cls(non_blocking=True, approx_assoc=False, use_predictor=False)

    @classmethod
    def fa_fuse(cls) -> "FuseFeatures":
        return cls(non_blocking=True, approx_assoc=True, use_predictor=False)

    @classmethod
    def dy_fuse(cls) -> "FuseFeatures":
        return cls(non_blocking=True, approx_assoc=True, use_predictor=True)


class FuseCache(L1DCacheModel):
    """Heterogeneous SRAM + STT-MRAM L1D cache.

    Args:
        sram_kb / sram_assoc: SRAM bank geometry (Table I: 16 KB, 2-way).
        stt_kb: STT-MRAM bank capacity (Table I: 64 KB).
        stt_assoc: ways per set when *not* approximated (Table I: 2).
        features: which FUSE mechanisms are enabled.
        sram_read/write_latency: 1/1 cycles (Table I).
        stt_read/write_latency: 1/5 cycles (Table I).
        swap_entries: swap-buffer registers (3).
        tag_queue_capacity: pending STT operations (16).
        num_cbfs / cbf_counters / cbf_hashes: approximation parameters
            (128 CBFs x 16 2-bit counters, 3 hash functions).
        exact_fa: price STT tag search as an ideal fully-associative
            lookup (Figure 7b's comparison baseline).
        predictor: inject a pre-built predictor (otherwise one is created
            from Table I defaults when the feature is on).
    """

    def __init__(
        self,
        sram_kb: int = 16,
        sram_assoc: int = 2,
        stt_kb: int = 64,
        stt_assoc: int = 2,
        features: FuseFeatures = FuseFeatures.dy_fuse(),
        sram_read_latency: int = 1,
        sram_write_latency: int = 1,
        stt_read_latency: int = 1,
        stt_write_latency: int = 5,
        swap_entries: int = 3,
        tag_queue_capacity: int = 16,
        num_cbfs: int = 128,
        cbf_counters: int = 16,
        cbf_hashes: int = 3,
        num_comparators: int = 4,
        exact_fa: bool = False,
        mshr_entries: int = 32,
        mshr_max_merge: int = 8,
        predictor: Optional[ReadLevelPredictor] = None,
        name: str = "Dy-FUSE",
    ) -> None:
        super().__init__()
        self.name = name
        self.features = features

        sram_lines = sram_kb * 1024 // BLOCK_SIZE
        if sram_lines % sram_assoc:
            raise ValueError(f"{sram_kb}KB SRAM not divisible by {sram_assoc} ways")
        self.sram = TagArray(sram_lines // sram_assoc, sram_assoc, "lru")

        stt_lines = stt_kb * 1024 // BLOCK_SIZE
        if features.approx_assoc:
            self.stt = TagArray(1, stt_lines, "fifo")
            self.approx: Optional[ApproximateAssociativeArray] = (
                ApproximateAssociativeArray(
                    num_ways=stt_lines,
                    num_cbfs=min(num_cbfs, max(1, stt_lines // num_comparators)),
                    num_hashes=cbf_hashes,
                    cbf_counters=cbf_counters,
                    num_comparators=num_comparators,
                    exact=exact_fa,
                )
            )
        else:
            if stt_lines % stt_assoc:
                raise ValueError(
                    f"{stt_kb}KB STT not divisible by {stt_assoc} ways"
                )
            self.stt = TagArray(stt_lines // stt_assoc, stt_assoc, "fifo")
            self.approx = None

        self.mshr = MSHR(mshr_entries, mshr_max_merge)
        self.miss_path = MissPath(self.mshr, self.stats)
        self.l2_sink = WritebackSink(
            self.stats, leaves_cache=True, scorer=self._score_departure
        )
        self.sram_read_latency = sram_read_latency
        self.sram_write_latency = sram_write_latency
        self.stt_read_latency = stt_read_latency
        self.stt_write_latency = stt_write_latency

        #: the SRAM bank is fully pipelined: 1-cycle occupancy for both
        #: reads and writes (Table I timing)
        self.sram_port = BankPort(
            self.stats,
            "sram",
            read_latency=sram_read_latency,
            write_latency=sram_write_latency,
            read_occupancy=1,
            write_occupancy=1,
        )
        #: blocking-mode (Hybrid) STT bank: writes occupy it end to end.
        #: Event counting stays with the routing paths -- FUSE charges
        #: ``stt_reads``/``stt_writes`` per decision, not per bank op.
        self.stt_port = BankPort(
            self.stats,
            "stt",
            read_latency=stt_read_latency,
            write_latency=stt_write_latency,
            read_occupancy=1,
            write_occupancy=stt_write_latency,
            count_events=False,
        )

        if features.use_predictor:
            self.predictor = predictor or ReadLevelPredictor()
        else:
            self.predictor = None
        self.arbiter = Arbiter(self.predictor)

        if features.non_blocking:
            self.swap = SwapBuffer(swap_entries)
            self.tag_queue = TagQueue(
                capacity=tag_queue_capacity,
                read_latency=stt_read_latency,
                write_latency=stt_write_latency,
            )
        else:
            self.swap = SwapBuffer(0)
            self.tag_queue = TagQueue(
                capacity=1,
                read_latency=stt_read_latency,
                write_latency=stt_write_latency,
            )

        self._cache_busy_until = 0    # blocking mode: whole-cache gate
        #: fill-time predicted levels keyed by block, applied at fill
        self._pending_levels: dict = {}

    # ==================================================================
    # helpers
    def _search_stt(self, block_addr: int) -> Tuple[Optional[int], int]:
        """Search the STT tag array; returns ``(way_or_None, cycles)``.

        The authoritative result comes from the tag array; the
        approximation structure prices the search and records CBF
        statistics.  Lines parked behind a reservation never hit.
        """
        set_idx, way = self.stt.lookup(block_addr)
        if self.approx is not None:
            result = self.approx.search(block_addr)
            stats = self.stats
            stats.tag_searches += 1
            stats.tag_search_iterations += result.iterations
            stats.cbf_tests += 1
            stats.cbf_false_positives += result.false_positives
            extra = result.cycles - 1
            if extra > 0:
                stats.tag_search_stall_cycles += extra
            return way, result.cycles
        return way, 1

    def _score_departure(self, evicted: EvictedLine) -> None:
        """WritebackSink scorer: a line left the L1D for L2."""
        self._score_line_departure(
            evicted.predicted_level, evicted.writes_observed
        )

    def _score_line_departure(
        self, predicted_level: Optional[object], writes_observed: int
    ) -> None:
        """Figure 16 accounting when a block leaves the L1D for L2."""
        if self.predictor is None:
            return
        verdict = ReadLevelPredictor.score_eviction(
            predicted_level, writes_observed
        )
        if verdict == "true":
            self.stats.pred_true += 1
        elif verdict == "false":
            self.stats.pred_false += 1
        else:
            self.stats.pred_neutral += 1

    # ==================================================================
    # structural-hazard pre-checks (check-then-commit)
    def _sram_eviction_hazard(self, block_addr: int, cycle: int) -> Optional[str]:
        """Can the SRAM bank absorb a reservation for *block_addr* now?

        Returns None when safe, otherwise a reason string.  Must stay in
        lockstep with the commit in :meth:`_handle_sram_eviction` (same
        victim, same destination decision).
        """
        can, victim = self.sram.peek_victim(block_addr)
        if not can:
            return "sram_all_reserved"
        if victim is None:
            return None  # free way: no eviction at all
        decision = self.arbiter.eviction_destination(victim.fill_pc)
        if decision.destination is Destination.L2:
            return None  # leaves the cache; nothing on-chip to arrange
        # destination STT: needs a swap-buffer register and a queue slot
        if self.features.non_blocking:
            if self.swap.is_full(cycle):
                self.stats.swap_buffer_full_events += 1
                self.stats.stt_write_stall_cycles += RETRY_INTERVAL
                return "swap_full"
            if self.tag_queue.is_full(cycle):
                self.stats.tag_queue_full_events += 1
                self.stats.stt_write_stall_cycles += RETRY_INTERVAL
                return "tag_queue_full"
        if not self.stt.can_reserve(victim.block_addr):
            return "stt_all_reserved"
        return None

    # ==================================================================
    # eviction / migration machinery
    def _install_in_stt(
        self,
        block_addr: int,
        cycle: int,
        dirty: bool,
        fill_pc: int,
        predicted_level: Optional[object],
        writes_observed: int = 0,
        reads_observed: int = 0,
    ) -> Tuple[int, Tuple[int, ...]]:
        """Install a line into the STT tag array (data write priced by the
        caller).  Returns ``(way, writebacks)`` from any displaced victim.
        """
        set_idx, way, displaced = self.stt.install(
            block_addr, cycle, dirty=dirty, fill_pc=fill_pc,
            predicted_level=predicted_level,
        )
        line = self.stt.line(set_idx, way)
        line.writes_observed = writes_observed
        line.reads_observed = reads_observed
        writebacks: Tuple[int, ...] = ()
        if displaced is not None:
            if self.approx is not None:
                self.approx.note_evict(displaced.block_addr)
            writebacks = self.l2_sink.evict(displaced)
        if self.approx is not None:
            self.approx.note_install(block_addr, way)
        return way, writebacks

    def _handle_sram_eviction(
        self, evicted: EvictedLine, cycle: int
    ) -> Tuple[int, ...]:
        """Route a line displaced from SRAM (Figure 9, eviction leg).

        The hazard pre-check has already guaranteed resources; this method
        commits the move.
        """
        decision = self.arbiter.eviction_destination(evicted.fill_pc)
        if decision.destination is Destination.L2:
            return self.l2_sink.evict(evicted)

        # SRAM -> STT migration.
        self.stats.migrations_sram_to_stt += 1
        self.stats.stt_writes += 1
        if self.features.non_blocking:
            completion = self.tag_queue.enqueue("migrate", cycle)
            self.swap.stage(
                evicted.block_addr,
                cycle,
                release_cycle=completion,
                dirty=evicted.dirty,
                fill_pc=evicted.fill_pc,
                predicted_level=evicted.predicted_level,
            )
        else:
            # Hybrid: the STT write blocks the whole cache.
            start = max(cycle, self.stt_port.busy_until)
            completion = start + self.stt_write_latency
            self.stt_port.busy_until = completion
            self._cache_busy_until = max(self._cache_busy_until, completion)
            self.stats.stt_write_stall_cycles += completion - cycle
        _, writebacks = self._install_in_stt(
            evicted.block_addr,
            cycle,
            dirty=evicted.dirty,
            fill_pc=evicted.fill_pc,
            predicted_level=evicted.predicted_level,
            writes_observed=evicted.writes_observed,
            reads_observed=evicted.reads_observed,
        )
        return writebacks

    # ==================================================================
    def _observe(self, request: MemoryRequest) -> None:
        if self.predictor is not None:
            self.predictor.observe(request)

    def _access_impl(self, request: MemoryRequest, cycle: int) -> AccessResult:
        is_write = request.is_write
        block = request.block_addr
        stats = self.stats

        # Blocking mode (Hybrid): while an STT-MRAM write is in flight the
        # L1D cannot accept requests at all -- the access is rejected and
        # the SM's pipeline stalls (Section IV-A's motivation for the swap
        # buffer and tag queue).
        if not self.features.non_blocking and cycle < self._cache_busy_until:
            gate_wait = min(self._cache_busy_until - cycle, RETRY_INTERVAL)
            stats.stt_write_stall_cycles += gate_wait
            stats.bank_wait_cycles += gate_wait
            return self.miss_path.reject(block, cycle)

        stats.tag_lookups += 1

        # ---- 1. SRAM bank -------------------------------------------------
        s_set, s_way = self.sram.lookup(block)
        if s_way is not None:
            stats.hits += 1
            stats.sram_hits += 1
            self.sram.touch(s_set, s_way, is_write)
            if is_write:
                stats.write_hits += 1
                ready = self.sram_port.write(cycle)
            else:
                stats.read_hits += 1
                ready = self.sram_port.read(cycle)
            return AccessResult(AccessOutcome.HIT, ready, (), block)

        # ---- 2. swap buffer ----------------------------------------------
        if self.features.non_blocking and self.swap.touch(block, cycle, is_write):
            stats.hits += 1
            stats.swap_buffer_hits += 1
            if is_write:
                stats.write_hits += 1
                # keep the (already installed) STT copy's metadata honest
                set_idx, way = self.stt.lookup(block)
                if way is not None:
                    self.stt.touch(set_idx, way, True)
            else:
                stats.read_hits += 1
            return AccessResult(AccessOutcome.HIT, cycle + 1, (), block)

        # ---- 3. STT-MRAM bank ---------------------------------------------
        stt_way, search_cycles = self._search_stt(block)
        if stt_way is not None:
            return self._serve_stt_hit(
                request, cycle, stt_way, search_cycles
            )

        # ---- 4. miss path ---------------------------------------------------
        return self._handle_miss(request, cycle)

    # ------------------------------------------------------------------
    def bulk_hit_retire(
        self,
        txns,
        start: int,
        end: int,
        cycle: int,
        pc: int,
        warp_id: int,
        is_write: bool,
    ):
        """All-hit span fast path, restricted to **SRAM-resident** spans.

        An SRAM hit is the only FUSE hit with no side channel: no tag
        queue, no CBF search, no swap buffer, no migration, and it never
        moves ``_cache_busy_until``.  Swap-buffer and STT hits (flushes,
        searches, blocking-mode gates) stay with the interpreter.  In
        blocking mode (``Hybrid``) the whole-cache gate is checked at the
        first arrival; it cannot re-arm mid-span because SRAM hits never
        advance it.
        """
        if not self.features.non_blocking and cycle < self._cache_busy_until:
            return None
        index = self.sram._index
        entries = []
        append = entries.append
        for k in range(start, end):
            entry = index.get(txns[k])
            if entry is None:
                return None
            append(entry)
        count = end - start
        stats = self.stats
        stats.accesses += count
        stats.tag_lookups += count
        stats.hits += count
        stats.sram_hits += count
        if is_write:
            stats.write_accesses += count
            stats.write_hits += count
        else:
            stats.read_accesses += count
            stats.read_hits += count
        touch = self.sram.touch
        for set_idx, way in entries:
            touch(set_idx, way, is_write)
        predictor = self.predictor
        if predictor is not None:
            observe = predictor.observe_raw
            for k in range(start, end):
                observe(warp_id, txns[k], pc, is_write)
        return self.sram_port.bulk(cycle, count, is_write)

    # ------------------------------------------------------------------
    def _serve_stt_hit(
        self,
        request: MemoryRequest,
        cycle: int,
        way: int,
        search_cycles: int,
    ) -> AccessResult:
        block = request.block_addr
        set_idx = self.stt.set_index(block)
        is_write = request.is_write
        stats = self.stats

        if not is_write:
            # Read hit: ride the tag queue (or the blocking bank).
            if self.features.non_blocking:
                if self.tag_queue.is_full(cycle):
                    stats.tag_queue_full_events += 1
                    stats.stt_write_stall_cycles += RETRY_INTERVAL
                    return self.miss_path.reject(block, cycle)
                ready = self.tag_queue.enqueue(
                    "read", cycle, extra_search_cycles=search_cycles - 1
                )
            else:
                ready = self.stt_port.read(cycle, extra=search_cycles - 1)
            stats.hits += 1
            stats.stt_hits += 1
            stats.read_hits += 1
            stats.stt_reads += 1
            self.stt.touch(set_idx, way, False)
            return AccessResult(AccessOutcome.HIT, ready, (), block)

        # Store hit on STT-MRAM.
        if self.arbiter.migrate_on_stt_write_hit():
            return self._migrate_stt_to_sram(request, cycle, search_cycles)

        # Write in place: the queue holds no payloads, so flush it first
        # (Section IV-A), then pay the 5-cycle write.
        if self.features.non_blocking:
            drain_done, _ = self.tag_queue.flush(cycle)
            stats.tag_queue_flushes += 1
            stats.stt_write_stall_cycles += drain_done - cycle
            ready = drain_done + search_cycles - 1 + self.stt_write_latency
            self.tag_queue.occupy_until(ready)
        else:
            ready = self.stt_port.write(cycle, extra=search_cycles - 1)
            self._cache_busy_until = max(self._cache_busy_until, ready)
        stats.hits += 1
        stats.stt_hits += 1
        stats.write_hits += 1
        stats.stt_writes += 1
        self.stt.touch(set_idx, way, True)
        return AccessResult(AccessOutcome.HIT, ready, (), block)

    # ------------------------------------------------------------------
    def _migrate_stt_to_sram(
        self, request: MemoryRequest, cycle: int, search_cycles: int
    ) -> AccessResult:
        """Dy-FUSE store-hit-on-STT misprediction path (Section III-A):
        read the line out of STT-MRAM, invalidate it there, install it in
        SRAM and let SRAM serve the store."""
        block = request.block_addr

        # The SRAM side must be able to take the line first.
        hazard = self._sram_eviction_hazard(block, cycle)
        if hazard is not None:
            return self.miss_path.reject(block, cycle)

        drain_done, _ = self.tag_queue.flush(cycle)
        self.stats.tag_queue_flushes += 1
        self.stats.stt_write_stall_cycles += drain_done - cycle

        snapshot = self.stt.invalidate(block)
        if snapshot is None:  # pragma: no cover - guarded by caller
            raise RuntimeError("migration source vanished")
        if self.approx is not None:
            self.approx.note_evict(block)
        self.stats.stt_reads += 1
        self.stats.migrations_stt_to_sram += 1
        read_done = drain_done + search_cycles - 1 + self.stt_read_latency
        self.tag_queue.occupy_until(read_done)

        _, _, displaced = self.sram.install(
            block,
            cycle,
            dirty=True,  # the store makes it dirty immediately
            fill_pc=snapshot.fill_pc,
            predicted_level=ReadLevel.WM,
        )
        line = self.sram.line(*self.sram.lookup(block))
        line.writes_observed = snapshot.writes_observed + 1
        line.reads_observed = snapshot.reads_observed
        writebacks: Tuple[int, ...] = ()
        if displaced is not None:
            writebacks = self._handle_sram_eviction(displaced, cycle)

        ready = self.sram_port.write(read_done)
        self.stats.hits += 1
        self.stats.stt_hits += 1
        self.stats.write_hits += 1
        return AccessResult(AccessOutcome.HIT, ready, writebacks, block)

    # ------------------------------------------------------------------
    def _handle_miss(
        self, request: MemoryRequest, cycle: int
    ) -> AccessResult:
        block = request.block_addr

        merged = self.miss_path.merge_or_reject(request, block, cycle)
        if merged is not None:
            return merged

        decision = self.arbiter.fill_destination(request.pc)
        writebacks: Tuple[int, ...] = ()

        if decision.destination is Destination.SRAM:
            hazard = self._sram_eviction_hazard(block, cycle)
            if hazard is not None:
                return self.miss_path.reject(block, cycle)
            _, _, evicted = self.sram.reserve(block, cycle)
            if evicted is not None:
                writebacks = self._handle_sram_eviction(evicted, cycle)
            destination = "sram"
        else:
            if not self.stt.can_reserve(block):
                return self.miss_path.reject(block, cycle)
            _, way, evicted = self.stt.reserve(block, cycle)
            if evicted is not None:
                if self.approx is not None:
                    self.approx.note_evict(evicted.block_addr)
                writebacks = self.l2_sink.evict(evicted)
            destination = "stt"

        entry = self.miss_path.allocate(
            block, request, destination=destination, cycle=cycle
        )
        entry.reserved_way = -1
        # Remember the level that motivated the placement; scored on
        # eviction (Figure 16).
        self._pending_levels[block] = decision.level
        return AccessResult(AccessOutcome.MISS, cycle, writebacks, block)

    # ------------------------------------------------------------------
    def fill(self, block_addr: int, cycle: int) -> FillResult:
        entry = self.miss_path.release(block_addr)
        level = self._pending_levels.pop(block_addr, None)
        primary = entry.requests[0]

        if entry.destination == "sram":
            set_idx, way = self.sram.fill(
                block_addr,
                cycle,
                is_write=primary.is_write,
                fill_pc=primary.pc,
                predicted_level=level,
            )
            ready = self.sram_port.write(cycle)
            line = self.sram.line(set_idx, way)
        else:
            set_idx, way = self.stt.fill(
                block_addr,
                cycle,
                is_write=primary.is_write,
                fill_pc=primary.pc,
                predicted_level=level,
            )
            if self.approx is not None:
                self.approx.note_install(block_addr, way)
            self.stats.stt_writes += 1
            if self.features.non_blocking:
                ready = self.tag_queue.enqueue("fill", cycle, force=True)
            else:
                start = max(cycle, self.stt_port.busy_until)
                ready = start + self.stt_write_latency
                self.stt_port.busy_until = ready
                self._cache_busy_until = max(self._cache_busy_until, ready)
            line = self.stt.line(set_idx, way)

        MissPath.apply_merged(entry, line)

        self.stats.fills += 1
        return FillResult(ready, list(entry.requests), ())

    # ------------------------------------------------------------------
    def flush_metadata(self) -> None:
        """Score predictor decisions for lines still resident at the end
        of the run (they never got an eviction to be scored on)."""
        if self.predictor is None:
            return
        for line in self.sram.iter_valid_lines():
            self._score_line_departure(line.predicted_level, line.writes_observed)
        for line in self.stt.iter_valid_lines():
            self._score_line_departure(line.predicted_level, line.writes_observed)

    # convenience for tests -------------------------------------------------
    def resident_in_sram(self, block_addr: int) -> bool:
        """True when *block_addr* is valid in the SRAM bank."""
        return self.sram.lookup(block_addr)[1] is not None

    def resident_in_stt(self, block_addr: int) -> bool:
        """True when *block_addr* is valid in the STT bank."""
        return self.stt.lookup(block_addr)[1] is not None
