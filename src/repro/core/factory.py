"""Named L1D configurations (Table I) and their factory.

Every experiment in the paper selects one of seven L1D organisations, all
built within the same on-chip area budget as a 32 KB SRAM cache
(STT-MRAM's 36F^2 cell vs SRAM's 140F^2 gives ~4x density):

* ``L1-SRAM``  -- 32 KB SRAM, 64 sets x 4 ways.
* ``FA-SRAM``  -- 32 KB SRAM, fully associative (idealised baseline).
* ``L1-NVM``   -- 128 KB pure STT-MRAM, no bypass (Figure 3's STT GPU).
* ``By-NVM``   -- 128 KB pure STT-MRAM + dead-write bypass.
* ``Oracle``   -- unbounded capacity (Figure 3's upper bound).
* ``Hybrid``   -- 16 KB SRAM (2-way) + 64 KB STT (2-way), blocking.
* ``Base-FUSE``/``FA-FUSE``/``Dy-FUSE`` -- the FUSE feature ladder.

Figure 18's SRAM:STT ratio sweep is exposed through
:func:`ratio_config`: a ratio ``r`` spends ``r`` of the area on SRAM and
the rest on STT-MRAM (4x denser), so ``1/2`` reproduces the Table I
16 KB + 64 KB split.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Callable, Dict, Optional

from repro.cache.interface import L1DCacheModel
from repro.cache.nvm_bypass import ByNVMCache
from repro.cache.oracle import OracleCache
from repro.cache.sram_cache import (
    make_fa_sram_cache,
    make_pure_nvm_cache,
    make_sram_cache,
)
from repro.core.fuse_cache import FuseCache, FuseFeatures

__all__ = [
    "AREA_BUDGET_SRAM_KB", "L1DConfig", "STT_DENSITY_FACTOR",
    "config_for_budget", "known_configs", "l1d_config", "make_l1d",
    "ratio_config",
]

#: Area budget every configuration must fit: a 32 KB SRAM array.
AREA_BUDGET_SRAM_KB = 32

#: STT-MRAM density advantage under the same area (36F^2 vs 140F^2 ~ 4x).
STT_DENSITY_FACTOR = 4


@dataclass(frozen=True)
class L1DConfig:
    """A fully-specified L1D configuration.

    Attributes mirror Table I; ``kind`` selects the engine and the factory
    interprets the rest.  Instances are immutable so they can be shared
    and used as cache keys by the experiment harness.
    """

    name: str
    kind: str                       # sram | fa_sram | nvm | by_nvm | oracle | fuse
    sram_kb: int = 0
    sram_assoc: int = 4
    stt_kb: int = 0
    stt_assoc: int = 4
    features: Optional[FuseFeatures] = None
    exact_fa: bool = False
    swap_entries: int = 3
    tag_queue_capacity: int = 16
    num_cbfs: int = 128
    cbf_counters: int = 16
    cbf_hashes: int = 3
    mshr_entries: int = 32
    mshr_max_merge: int = 8
    dead_threshold: int = 10
    unused_threshold: int = 14
    description: str = ""

    def with_overrides(self, **kwargs) -> "L1DConfig":
        """Return a modified copy (used by sensitivity sweeps)."""
        return replace(self, **kwargs)


def _table1_configs() -> Dict[str, L1DConfig]:
    fuse_geometry = dict(
        sram_kb=16, sram_assoc=2, stt_kb=64, stt_assoc=2
    )
    return {
        "L1-SRAM": L1DConfig(
            name="L1-SRAM", kind="sram", sram_kb=32, sram_assoc=4,
            description="32KB 4-way SRAM baseline (Table I)",
        ),
        "FA-SRAM": L1DConfig(
            name="FA-SRAM", kind="fa_sram", sram_kb=32,
            description="32KB fully-associative SRAM (idealised)",
        ),
        "L1-NVM": L1DConfig(
            name="L1-NVM", kind="nvm", stt_kb=128, stt_assoc=4,
            description="128KB pure STT-MRAM, no bypass (Figure 3)",
        ),
        "By-NVM": L1DConfig(
            name="By-NVM", kind="by_nvm", stt_kb=128, stt_assoc=4,
            description="128KB pure STT-MRAM + dead-write bypass",
        ),
        "Oracle": L1DConfig(
            name="Oracle", kind="oracle",
            description="Unbounded-capacity ideal L1D (Figure 3)",
        ),
        "Hybrid": L1DConfig(
            name="Hybrid", kind="fuse", features=FuseFeatures.hybrid(),
            description="16KB SRAM + 64KB STT, blocking STT writes",
            **fuse_geometry,
        ),
        "Base-FUSE": L1DConfig(
            name="Base-FUSE", kind="fuse", features=FuseFeatures.base_fuse(),
            description="Hybrid + swap buffer + tag queue",
            **fuse_geometry,
        ),
        "FA-FUSE": L1DConfig(
            name="FA-FUSE", kind="fuse", features=FuseFeatures.fa_fuse(),
            description="Base-FUSE + approximated fully-associative STT",
            **fuse_geometry,
        ),
        "Dy-FUSE": L1DConfig(
            name="Dy-FUSE", kind="fuse", features=FuseFeatures.dy_fuse(),
            description="FA-FUSE + read-level predictor",
            **fuse_geometry,
        ),
    }


_CONFIGS = _table1_configs()


def known_configs() -> list:
    """Names accepted by :func:`l1d_config`."""
    return sorted(_CONFIGS)


def l1d_config(name: str) -> L1DConfig:
    """Look up a named Table I configuration.

    Raises:
        ValueError: for unknown names.
    """
    try:
        return _CONFIGS[name]
    except KeyError:
        raise ValueError(
            f"unknown L1D config {name!r}; known: {', '.join(known_configs())}"
        )


def ratio_config(
    sram_fraction: Fraction,
    base: str = "Dy-FUSE",
    area_budget_kb: int = AREA_BUDGET_SRAM_KB,
) -> L1DConfig:
    """Build a Figure 18 ratio configuration.

    Args:
        sram_fraction: fraction of the L1D area spent on SRAM (the paper
            sweeps 1/16, 1/8, 1/4, 1/2 and 3/4).
        base: named configuration providing the feature set.
        area_budget_kb: SRAM-equivalent area budget (32 KB).

    Returns:
        A config whose SRAM bank holds ``fraction x budget`` KB and whose
        STT bank holds the remaining area at 4x density.
    """
    if not 0 < sram_fraction < 1:
        raise ValueError("sram_fraction must be in (0, 1)")
    sram_kb = int(area_budget_kb * sram_fraction)
    if sram_kb < 1:
        raise ValueError("sram_fraction too small for the area budget")
    stt_kb = (area_budget_kb - sram_kb) * STT_DENSITY_FACTOR
    template = l1d_config(base)
    # pick the smallest associativity (>= 2 when possible) that leaves a
    # power-of-two set count, e.g. 24 KB -> 192 lines -> 64 sets x 3 ways
    lines = sram_kb * 1024 // 128
    sram_assoc = max(1, lines // _largest_pow2_divisor(lines))
    if sram_assoc == 1 and lines >= 2:
        sram_assoc = 2
    return template.with_overrides(
        name=f"{base}-{sram_fraction}",
        sram_kb=sram_kb,
        sram_assoc=sram_assoc,
        stt_kb=stt_kb,
        description=f"{base} with {sram_fraction} of area as SRAM",
    )


def _largest_pow2_divisor(value: int) -> int:
    return value & -value


def config_for_budget(name: str, area_budget_kb: int) -> L1DConfig:
    """Scale a named configuration to a different L1D area budget.

    Figure 19 evaluates Volta, whose reconfigurable L1 is set to 128 KB;
    every Table I organisation scales with the budget (By-NVM's pure STT
    becomes 512 KB, the FUSE split becomes 64 KB + 256 KB, ...).  CBF
    count scales with the approximated way count so each CBF still covers
    a 4-way group.
    """
    if area_budget_kb < 4 or area_budget_kb % 4:
        raise ValueError("area_budget_kb must be a positive multiple of 4")
    template = l1d_config(name)
    factor = area_budget_kb / AREA_BUDGET_SRAM_KB
    if factor == 1:
        return template
    scaled_sram = int(template.sram_kb * factor)
    scaled_stt = int(template.stt_kb * factor)
    stt_ways = scaled_stt * 1024 // 128
    return template.with_overrides(
        name=template.name,
        sram_kb=scaled_sram,
        stt_kb=scaled_stt,
        num_cbfs=max(1, stt_ways // 4) if template.kind == "fuse" else template.num_cbfs,
        description=f"{template.description} (budget {area_budget_kb}KB)",
    )


def make_l1d(config: L1DConfig) -> L1DCacheModel:
    """Instantiate the cache model described by *config*.

    Raises:
        ValueError: for an unknown ``kind``.
    """
    if config.kind == "sram":
        return make_sram_cache(
            size_kb=config.sram_kb,
            assoc=config.sram_assoc,
            mshr_entries=config.mshr_entries,
            mshr_max_merge=config.mshr_max_merge,
            name=config.name,
        )
    if config.kind == "fa_sram":
        return make_fa_sram_cache(
            size_kb=config.sram_kb,
            mshr_entries=config.mshr_entries,
            mshr_max_merge=config.mshr_max_merge,
            name=config.name,
        )
    if config.kind == "nvm":
        return make_pure_nvm_cache(
            size_kb=config.stt_kb,
            assoc=config.stt_assoc,
            mshr_entries=config.mshr_entries,
            mshr_max_merge=config.mshr_max_merge,
            name=config.name,
        )
    if config.kind == "by_nvm":
        return ByNVMCache(
            size_kb=config.stt_kb,
            assoc=config.stt_assoc,
            mshr_entries=config.mshr_entries,
            mshr_max_merge=config.mshr_max_merge,
            dead_threshold=config.dead_threshold,
            name=config.name,
        )
    if config.kind == "oracle":
        return OracleCache(
            mshr_entries=config.mshr_entries,
            mshr_max_merge=config.mshr_max_merge,
            name=config.name,
        )
    if config.kind == "fuse":
        if config.features is None:
            raise ValueError("fuse configs need a FuseFeatures value")
        predictor = None
        if config.features.use_predictor:
            from repro.core.read_level_predictor import ReadLevelPredictor

            predictor = ReadLevelPredictor(
                unused_threshold=config.unused_threshold
            )
        return FuseCache(
            sram_kb=config.sram_kb,
            sram_assoc=config.sram_assoc,
            stt_kb=config.stt_kb,
            stt_assoc=config.stt_assoc,
            features=config.features,
            swap_entries=config.swap_entries,
            tag_queue_capacity=config.tag_queue_capacity,
            num_cbfs=config.num_cbfs,
            cbf_counters=config.cbf_counters,
            cbf_hashes=config.cbf_hashes,
            exact_fa=config.exact_fa,
            mshr_entries=config.mshr_entries,
            mshr_max_merge=config.mshr_max_merge,
            predictor=predictor,
            name=config.name,
        )
    raise ValueError(f"unknown L1D kind {config.kind!r}")
