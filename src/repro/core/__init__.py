"""The paper's primary contribution: the FUSE heterogeneous L1D cache.

Subsystems (each its own module, mirroring the paper's Section III/IV
structure):

* :mod:`repro.core.bloom` -- counting Bloom filters + the NVM-CBF timing
  model (Section IV-C).
* :mod:`repro.core.approx_assoc` -- CBF-guided associativity approximation
  for the STT-MRAM bank (Section III-B).
* :mod:`repro.core.sampler` -- the PC-signature memory-request sampler that
  both predictors are built on.
* :mod:`repro.core.read_level_predictor` -- WM / neutral / WORM / WORO
  classification (Section IV-B).
* :mod:`repro.core.tag_queue` -- non-blocking STT-MRAM service queue.
* :mod:`repro.core.swap_buffer` -- SRAM-to-STT eviction staging registers.
* :mod:`repro.core.arbitration` -- the decision tree of Figure 9.
* :mod:`repro.core.fuse_cache` -- the heterogeneous cache engine that the
  ``Hybrid``, ``Base-FUSE``, ``FA-FUSE`` and ``Dy-FUSE`` configurations all
  instantiate.
* :mod:`repro.core.factory` -- named Table I configurations.

Exports resolve lazily (PEP 562): ``repro.cache`` modules import the
sampler from here while ``repro.core.factory`` imports cache models from
``repro.cache``, and lazy resolution keeps that dependency cycle inert.
"""

_EXPORTS = {
    "ApproximateAssociativeArray": "repro.core.approx_assoc",
    "SearchResult": "repro.core.approx_assoc",
    "Arbiter": "repro.core.arbitration",
    "ArbiterDecision": "repro.core.arbitration",
    "Destination": "repro.core.arbitration",
    "CountingBloomFilter": "repro.core.bloom",
    "NVMCBFTimingModel": "repro.core.bloom",
    "L1DConfig": "repro.core.factory",
    "known_configs": "repro.core.factory",
    "l1d_config": "repro.core.factory",
    "ratio_config": "repro.core.factory",
    "make_l1d": "repro.core.factory",
    "FuseCache": "repro.core.fuse_cache",
    "FuseFeatures": "repro.core.fuse_cache",
    "ReadLevel": "repro.core.read_level_predictor",
    "ReadLevelPredictor": "repro.core.read_level_predictor",
    "SamplerObservation": "repro.core.sampler",
    "SamplerTable": "repro.core.sampler",
    "SwapBuffer": "repro.core.swap_buffer",
    "TagQueue": "repro.core.tag_queue",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    """Resolve package exports on first use (PEP 562)."""
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return __all__
