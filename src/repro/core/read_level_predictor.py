"""The read-level predictor (Section IV-B, Figure 11).

FUSE's data-placement decisions hinge on classifying each memory reference
into one of four *read levels* before the data arrives:

* ``WM``      -- write-multiple: the block will be updated again; it
  belongs in SRAM where writes are cheap.
* ``NEUTRAL`` -- read-intensive / undecided; STT-MRAM is fine (reads are
  as fast as SRAM there).
* ``WORM``    -- write-once-read-multiple: the ideal STT-MRAM tenant.
* ``WORO``    -- write-once-read-once: not worth caching at all; evict to
  L2 instead of migrating into STT-MRAM.

Mechanism (all sizes from Table I): a 4-set x 8-way sampler observes the
requests of four representative warps.  A 1024-entry prediction history
table keyed by a 9-bit PC signature holds a 4-bit saturating counter
(initialised to 8) and a 1-bit R/W status (initialised to R).

* sampler **hit**  -> the signature's blocks get re-referenced: counter--.
  A store hit additionally flips the status bit to W (the PC's blocks see
  multiple writes).
* sampler **eviction with U == 0** -> the signature's blocks die unused:
  counter++.

Classification of a PC with counter ``c`` (thresholds from Table I):
``c > unused_threshold (14)`` -> WORO; ``c < worm_threshold (1)`` -> WM if
status is W else WORM; anything between -> NEUTRAL (covers the
read-intensive class of Figure 6).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.cache.request import MemoryRequest
from repro.core.sampler import (
    SamplerTable,
    SaturatingCounterTable,
    pc_signature,
)

__all__ = [
    "ReadLevel", "ReadLevelPredictor",
]


class ReadLevel(enum.Enum):
    """Predicted read level of a memory reference."""

    WM = "write-multiple"
    NEUTRAL = "neutral"
    WORM = "write-once-read-multiple"
    WORO = "write-once-read-once"


class ReadLevelPredictor:
    """PC-signature read-level predictor.

    Args:
        table_entries: prediction-history-table entries (Table I: 1024;
            the paper's prose says 512 -- see ARCHITECTURE.md, "Model notes").
        unused_threshold: counter above which a PC is WORO (Table I: 14).
        worm_threshold: counter below which a PC is WORM/WM (Table I: 1).
        counter_init: initial counter value (paper: 8).
        sampled_warps: warp ids observed by the sampler.
    """

    def __init__(
        self,
        sampler_sets: int = 4,
        sampler_assoc: int = 8,
        table_entries: int = 1024,
        unused_threshold: int = 14,
        worm_threshold: int = 1,
        counter_init: int = 8,
        counter_bits: int = 4,
        hit_decrement: int = 2,
        sampled_warps=(0, 12, 24, 36),
    ) -> None:
        if unused_threshold <= worm_threshold:
            raise ValueError("unused_threshold must exceed worm_threshold")
        if hit_decrement < 1:
            raise ValueError("hit_decrement must be >= 1")
        self.unused_threshold = unused_threshold
        self.worm_threshold = worm_threshold
        #: counter decrement per sampler hit.  The paper says the counter
        #: "decreases" on a hit without giving the step; a step of 2 makes
        #: one observed reuse outweigh one unused eviction, which is what
        #: keeps long-reuse-distance WORM blocks (whose sampler entries
        #: are often displaced between touches) from drifting into WORO.
        self.hit_decrement = hit_decrement
        self.sampler = SamplerTable(
            num_sets=sampler_sets,
            assoc=sampler_assoc,
            sampled_warps=sampled_warps,
        )
        self.table = SaturatingCounterTable(
            entries=table_entries,
            counter_bits=counter_bits,
            init_value=counter_init,
        )
        self.observations = 0
        self.sampler_hits = 0

    # ------------------------------------------------------------------
    def observe(self, request: MemoryRequest) -> None:
        """Train the predictor on one L1D access."""
        self.observe_raw(
            request.warp_id, request.block_addr, request.pc,
            request.is_write,
        )

    def observe_raw(
        self, warp_id: int, block_addr: int, pc: int, is_write: bool
    ) -> None:
        """Request-free form of :meth:`observe` (fast-backend bulk path,
        which trains per transaction without materialising requests)."""
        observation = self.sampler.observe(
            warp_id, block_addr, pc, is_write
        )
        if observation is None:
            return
        self.observations += 1
        if observation.hit:
            self.sampler_hits += 1
            for _ in range(self.hit_decrement):
                self.table.decrement(observation.hit_signature)
            if observation.hit_is_write:
                self.table.mark_written(observation.hit_signature)
        elif (
            observation.evicted_signature is not None
            and not observation.evicted_used
        ):
            self.table.increment(observation.evicted_signature)

    # ------------------------------------------------------------------
    def predict(self, pc: int) -> ReadLevel:
        """Classify the read level of references issued by *pc*."""
        signature = pc_signature(pc)
        counter = self.table.counter(signature)
        if counter > self.unused_threshold:
            return ReadLevel.WORO
        if counter < self.worm_threshold:
            if self.table.is_written(signature):
                return ReadLevel.WM
            return ReadLevel.WORM
        return ReadLevel.NEUTRAL

    # ------------------------------------------------------------------
    @staticmethod
    def score_eviction(
        predicted: Optional[ReadLevel], writes_observed: int
    ) -> str:
        """Score a prediction at eviction time (Figure 16 methodology).

        The paper marks a prediction **True** when a WM block saw multiple
        writes before eviction, or a WORM/WORO block saw only its singular
        (fill) write; **False** in the opposite cases; **Neutral** when the
        predictor abstained.

        Args:
            predicted: level recorded on the line at fill time.
            writes_observed: stores that hit the line while resident
                (excluding the allocating fill itself).

        Returns:
            ``"true"``, ``"false"`` or ``"neutral"``.
        """
        if predicted is None or predicted is ReadLevel.NEUTRAL:
            return "neutral"
        if predicted is ReadLevel.WM:
            return "true" if writes_observed >= 1 else "false"
        # WORM / WORO predictions promise a singular write.
        return "true" if writes_observed == 0 else "false"
