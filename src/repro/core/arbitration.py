"""Arbitration logic: the data-placement decision tree of Figure 9.

The arbitrator owns three placement decisions; everything else in the FUSE
controller (bank probing, queue management) is mechanism.  Extracting the
decisions here keeps them unit-testable against the paper's tree:

* **Fill destination** -- where does an incoming (missed) block land?
  With the read-level predictor: WM and WORO blocks go to SRAM (writes are
  cheap there, and WORO blocks will be thrown to L2 soon anyway); WORM and
  neutral/read-intensive blocks go to STT-MRAM.  Without a predictor
  (Hybrid / Base-FUSE / FA-FUSE) every fill lands in SRAM and the STT bank
  acts as a victim store.
* **Eviction destination** -- when SRAM evicts a line, WORO-predicted
  lines leave for L2; everything else migrates into STT-MRAM (through the
  swap buffer when the non-blocking datapath is enabled).
* **STT write-hit action** -- a store hitting STT-MRAM is a misprediction
  for Dy-FUSE, which migrates the line back to SRAM; configurations
  without the predictor write in place (eating the tag-queue flush).

The paper notes the arbitration circuit evaluates in under 1 ns -- below a
cache cycle -- so the decision itself adds no latency in the timing model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.read_level_predictor import ReadLevel, ReadLevelPredictor

__all__ = [
    "Arbiter", "ArbiterDecision", "Destination",
]


class Destination(enum.Enum):
    """Where the arbitrated data block should live next."""

    SRAM = "sram"
    STT = "stt"
    L2 = "l2"


@dataclass(frozen=True, slots=True)
class ArbiterDecision:
    """A placement decision plus the predicted level that motivated it."""

    destination: Destination
    level: Optional[ReadLevel]


class Arbiter:
    """Figure 9's decision tree, parameterised by predictor availability."""

    def __init__(self, predictor: Optional[ReadLevelPredictor] = None) -> None:
        self.predictor = predictor

    # ------------------------------------------------------------------
    def fill_destination(self, pc: int) -> ArbiterDecision:
        """Destination bank for a block about to be fetched by *pc*."""
        if self.predictor is None:
            return ArbiterDecision(Destination.SRAM, None)
        level = self.predictor.predict(pc)
        if level in (ReadLevel.WM, ReadLevel.WORO):
            return ArbiterDecision(Destination.SRAM, level)
        return ArbiterDecision(Destination.STT, level)

    def eviction_destination(self, fill_pc: int) -> ArbiterDecision:
        """Destination for a line being evicted from the SRAM bank."""
        if self.predictor is None:
            return ArbiterDecision(Destination.STT, None)
        level = self.predictor.predict(fill_pc)
        if level is ReadLevel.WORO:
            return ArbiterDecision(Destination.L2, level)
        return ArbiterDecision(Destination.STT, level)

    def migrate_on_stt_write_hit(self) -> bool:
        """True when a store hitting STT-MRAM should migrate to SRAM."""
        return self.predictor is not None
