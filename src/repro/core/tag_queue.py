"""Tag queue: the non-blocking front of the STT-MRAM bank (Section IV-A).

STT-MRAM service latency varies (tag-search iterations, 5-cycle writes),
which would stall the SM pipeline.  FUSE interposes a 16-entry FIFO of
pending STT-MRAM operations -- each entry carries only a command type, tag
and index, so it is cheap.  Operations supported:

* ``read``  -- a load that hit in the STT-MRAM bank,
* ``fill``  -- an off-chip fill routed to the STT-MRAM bank,
* ``F``     -- a migration from the swap buffer (SRAM eviction), the
  paper's "F"-marked command.

A *write update* to a block resident in STT-MRAM (a read-level
misprediction) cannot ride the queue because the queue holds no 128-byte
payloads; the controller must **flush** the queue first (Section IV-A
observes this affects ~7% of requests).

Timing: the queue models the bank as a FIFO server.  Enqueueing an
operation at cycle ``c`` completes at ``max(c, previous completion) +
latency``; queue occupancy is the set of operations not yet completed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple

__all__ = [
    "TagQueue", "TagQueueStats",
]


@dataclass(slots=True)
class TagQueueStats:
    """Lifetime counters for one tag queue."""

    enqueued_reads: int = 0
    enqueued_fills: int = 0
    enqueued_migrations: int = 0
    flushes: int = 0
    flush_drain_cycles: int = 0
    full_rejections: int = 0


class TagQueue:
    """FIFO service queue in front of the STT-MRAM bank.

    Args:
        capacity: maximum simultaneously pending operations (Table I: 16).
        read_latency: STT-MRAM read service time (1 cycle).
        write_latency: STT-MRAM write service time (5 cycles); applies to
            fills and "F" migrations.
    """

    _OP_LATENCY_KEY = {"read": "read", "fill": "write", "migrate": "write"}

    def __init__(
        self,
        capacity: int = 16,
        read_latency: int = 1,
        write_latency: int = 5,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.stats = TagQueueStats()
        #: completion cycles of pending operations, oldest first
        self._pending: Deque[int] = deque()
        self._free_at = 0

    # ------------------------------------------------------------------
    def _prune(self, cycle: int) -> None:
        pending = self._pending
        while pending and pending[0] <= cycle:
            pending.popleft()

    def occupancy(self, cycle: int) -> int:
        """Operations still pending at *cycle*."""
        self._prune(cycle)
        return len(self._pending)

    def is_full(self, cycle: int) -> bool:
        """True when no operation can be accepted at *cycle*."""
        return self.occupancy(cycle) >= self.capacity

    def free_at(self) -> int:
        """Cycle at which the bank drains everything currently queued."""
        return self._free_at

    # ------------------------------------------------------------------
    def _latency_of(self, op: str, extra_search_cycles: int) -> int:
        kind = self._OP_LATENCY_KEY.get(op)
        if kind is None:
            raise ValueError(f"unknown tag-queue op {op!r}")
        base = self.read_latency if kind == "read" else self.write_latency
        return base + extra_search_cycles

    def enqueue(
        self,
        op: str,
        cycle: int,
        extra_search_cycles: int = 0,
        force: bool = False,
    ) -> int:
        """Enqueue an operation; returns its completion cycle.

        Callers must check :meth:`is_full` first, except for *fills*: an
        off-chip response cannot be refused, so fills pass ``force=True``
        and queue beyond capacity (the MSHR is their real buffer).

        Args:
            op: ``"read"``, ``"fill"`` or ``"migrate"``.
            cycle: arrival cycle.
            extra_search_cycles: tag-search latency to serialise in front
                of the bank operation (associativity approximation).
            force: accept even when the queue is at capacity.

        Raises:
            RuntimeError: when the queue is full and *force* is False
            (check-then-commit).
        """
        if self.is_full(cycle) and not force:
            self.stats.full_rejections += 1
            raise RuntimeError("tag queue enqueue() on a full queue")
        start = max(cycle, self._free_at)
        completion = start + self._latency_of(op, extra_search_cycles)
        # Reads are pipelined (tag polling overlaps the next operation's
        # data access), so they occupy the bank for a single cycle; MTJ
        # writes hold it for the full write latency.
        if op == "read":
            self._free_at = start + 1
        else:
            self._free_at = completion
        self._pending.append(completion)
        if op == "read":
            self.stats.enqueued_reads += 1
        elif op == "fill":
            self.stats.enqueued_fills += 1
        else:
            self.stats.enqueued_migrations += 1
        return completion

    def occupy_until(self, cycle: int) -> None:
        """Hold the bank busy until *cycle* without a queued entry.

        Used for operations the queue cannot carry (write updates and
        migration reads happen directly against the bank after a flush).
        """
        self._free_at = max(self._free_at, cycle)

    # ------------------------------------------------------------------
    def flush(self, cycle: int) -> Tuple[int, int]:
        """Drain every pending operation (write-update misprediction).

        Returns ``(drain_complete_cycle, drained_count)``.  The caller then
        performs its write starting from the drain-complete cycle.
        """
        self._prune(cycle)
        drained = len(self._pending)
        drain_done = max(cycle, self._free_at)
        self.stats.flushes += 1
        self.stats.flush_drain_cycles += drain_done - cycle
        self._pending.clear()
        # The bank is busy until the drain finishes.
        self._free_at = drain_done
        return drain_done, drained
