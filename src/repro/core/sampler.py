"""Memory-request sampler (Section IV-B, Figure 11).

The sampler is a tiny 4-set x 8-way associative structure that observes
memory requests from a handful of *representative warps* -- the paper
exploits the fact that warps of a GPU kernel execute the same instructions,
so sampling 4 of 48 warps is enough to learn per-PC behaviour.

Each entry stores:

* ``V``   -- valid bit,
* ``U``   -- used bit, set when the sampled block is re-referenced,
* ``RP``  -- LRU state (3 bits in hardware, a logical timestamp here),
* ``Tag`` -- 15 partial bits of the block address,
* ``Signature`` -- 9 partial bits of the PC that inserted the block.

The sampler itself only reports events (hit / eviction-with-U); the
prediction history tables that interpret those events live with their
owners (:mod:`repro.core.read_level_predictor` and the dead-write predictor
in :mod:`repro.cache.nvm_bypass`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = [
    "DEFAULT_SIGNATURE_BITS", "DEFAULT_TAG_BITS", "SamplerObservation",
    "SamplerTable", "SaturatingCounterTable", "pc_signature",
]


#: Partial address bits stored in a sampler entry tag (paper: 15).
DEFAULT_TAG_BITS = 15

#: Partial PC bits used as the predictor signature (paper: 9).
DEFAULT_SIGNATURE_BITS = 9


def pc_signature(pc: int, bits: int = DEFAULT_SIGNATURE_BITS) -> int:
    """Hash a PC down to its predictor signature.

    A simple xor-fold keeps distinct nearby PCs distinct while using only
    *bits* bits, mimicking the partial-PC indexing of the hardware table.
    """
    mask = (1 << bits) - 1
    return (pc ^ (pc >> bits) ^ (pc >> (2 * bits))) & mask


@dataclass(slots=True)
class _SamplerEntry:
    valid: bool = False
    used: bool = False
    tag: int = -1
    signature: int = 0
    written_again: bool = False
    stamp: int = -1


@dataclass(slots=True)
class SamplerObservation:
    """What happened when the sampler observed one request.

    Attributes:
        hit: the sampled block was already tracked.
        hit_signature: signature of the entry that was hit (fill PC).
        hit_is_write: the observing access was a store.
        evicted_signature: signature of a victim entry pushed out to make
            room (None when an invalid way was used).
        evicted_used: the victim's ``U`` bit -- False means the block was
            inserted and never re-referenced, the tell-tale of WORO /
            dead-write behaviour.
    """

    hit: bool
    hit_signature: Optional[int] = None
    hit_is_write: bool = False
    evicted_signature: Optional[int] = None
    evicted_used: bool = False


class SamplerTable:
    """The 4x8 LRU sampler structure of Figure 11.

    Args:
        num_sets: sampler sets; the paper dedicates one set per sampled
            warp (4).
        assoc: entries per set (8).
        tag_bits: partial address bits kept per entry (15).
        signature_bits: partial PC bits kept per entry (9).
        sampled_warps: warp ids whose requests are observed.  Requests from
            other warps are ignored, exactly like the hardware.
    """

    def __init__(
        self,
        num_sets: int = 4,
        assoc: int = 8,
        tag_bits: int = DEFAULT_TAG_BITS,
        signature_bits: int = DEFAULT_SIGNATURE_BITS,
        sampled_warps: Sequence[int] = (0, 12, 24, 36),
        block_sample_ratio: int = 4,
    ) -> None:
        if num_sets < 1 or assoc < 1:
            raise ValueError("num_sets and assoc must be >= 1")
        if block_sample_ratio < 1:
            raise ValueError("block_sample_ratio must be >= 1")
        self.num_sets = num_sets
        self.assoc = assoc
        self.tag_bits = tag_bits
        self.signature_bits = signature_bits
        #: observe only 1-in-N blocks (hash-selected).  Sampling-based
        #: dead-block predictors track a subset of cache sets for exactly
        #: this reason: the tiny sampler must not alias away reuse whose
        #: distance exceeds its associativity (Khan et al., MICRO 2010).
        self.block_sample_ratio = block_sample_ratio
        self._tag_mask = (1 << tag_bits) - 1
        self._warp_to_set = {
            warp: idx % num_sets for idx, warp in enumerate(sampled_warps)
        }
        self._sets: List[List[_SamplerEntry]] = [
            [_SamplerEntry() for _ in range(assoc)] for _ in range(num_sets)
        ]
        self._tick = 0

    # ------------------------------------------------------------------
    def samples_warp(self, warp_id: int) -> bool:
        """True when requests from *warp_id* are observed."""
        return warp_id in self._warp_to_set

    def _partial_tag(self, block_addr: int) -> int:
        return block_addr & self._tag_mask

    # ------------------------------------------------------------------
    def observe(
        self, warp_id: int, block_addr: int, pc: int, is_write: bool
    ) -> Optional[SamplerObservation]:
        """Observe one request; returns None for non-sampled warps and
        non-sampled blocks."""
        set_idx = self._warp_to_set.get(warp_id)
        if set_idx is None:
            return None
        if self.block_sample_ratio > 1:
            folded = block_addr ^ (block_addr >> 7) ^ (block_addr >> 13)
            if folded % self.block_sample_ratio:
                return None

        self._tick += 1
        tag = self._partial_tag(block_addr)
        ways = self._sets[set_idx]

        for entry in ways:
            if entry.valid and entry.tag == tag:
                entry.used = True
                entry.stamp = self._tick
                if is_write:
                    entry.written_again = True
                return SamplerObservation(
                    hit=True,
                    hit_signature=entry.signature,
                    hit_is_write=is_write,
                )

        # Miss: fill into an invalid way, or victimise the LRU entry.
        victim = None
        for entry in ways:
            if not entry.valid:
                victim = entry
                break
        if victim is None:
            victim = min(ways, key=lambda e: e.stamp)

        observation = SamplerObservation(
            hit=False,
            evicted_signature=victim.signature if victim.valid else None,
            evicted_used=victim.used if victim.valid else False,
        )
        victim.valid = True
        victim.used = False
        victim.written_again = False
        victim.tag = tag
        victim.signature = pc_signature(pc, self.signature_bits)
        victim.stamp = self._tick
        return observation

    def occupancy(self) -> int:
        """Total valid entries (for tests)."""
        return sum(
            1 for ways in self._sets for entry in ways if entry.valid
        )


class SaturatingCounterTable:
    """A table of n-bit saturating counters with optional status bits.

    This is the "prediction history table" substrate: 1024 entries of a
    4-bit counter plus a 1-bit R/W status in the read-level predictor
    (Table I), and a counter-only variant in the dead-write predictor.
    Counters initialise to *init_value* (8 in the paper) and saturate at
    ``2**counter_bits - 1``.
    """

    def __init__(
        self,
        entries: int = 1024,
        counter_bits: int = 4,
        init_value: int = 8,
    ) -> None:
        if entries < 1:
            raise ValueError("entries must be >= 1")
        self.entries = entries
        self.max_value = (1 << counter_bits) - 1
        if not 0 <= init_value <= self.max_value:
            raise ValueError("init_value out of counter range")
        self.init_value = init_value
        self._counters = [init_value] * entries
        self._status_written = [False] * entries

    def _index(self, signature: int) -> int:
        return signature % self.entries

    def counter(self, signature: int) -> int:
        return self._counters[self._index(signature)]

    def is_written(self, signature: int) -> bool:
        return self._status_written[self._index(signature)]

    def increment(self, signature: int) -> None:
        idx = self._index(signature)
        if self._counters[idx] < self.max_value:
            self._counters[idx] += 1

    def decrement(self, signature: int) -> None:
        idx = self._index(signature)
        if self._counters[idx] > 0:
            self._counters[idx] -= 1

    def mark_written(self, signature: int) -> None:
        self._status_written[self._index(signature)] = True
