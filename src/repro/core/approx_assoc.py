"""Associativity approximation for the STT-MRAM bank (Section III-B).

A true fully-associative cache compares every stored tag in parallel --
prohibitive at 512 ways (the paper cites 30.6x area and 28.3x power versus
4-way for even a 16 KB array).  FUSE instead:

1. partitions the 512-way tag array into groups sized to the number of
   parallel comparators (4), and
2. places one counting Bloom filter in front of each group.  A lookup first
   tests every CBF in parallel (one STT-MRAM read, sub-cycle), then polls
   only the *positive* groups, one group per cycle, 4 tags compared per
   iteration.

With well-tuned CBFs the search takes 1-2 cycles across the paper's
workloads; CBF false positives add wasted iterations, which Figure 20
quantifies.  The tag queue keeps those extra cycles off the SM's critical
path (they surface as ``tag_search_stall_cycles``, Figure 15).

Implementation note: the "test every CBF in parallel" step is priced
through per-group **nonzero bitmasks** -- bit ``c`` of group *g*'s mask
is set while counter ``(g, c)`` is nonzero, maintained incrementally on
0<->1 crossings.  A key's membership in every group then collapses to
one vectorised ``(masks & key_masks) == key_masks`` over a uint64 lane
per group -- semantically identical to testing 128 independent
:class:`~repro.core.bloom.CountingBloomFilter` objects (2-bit saturating
counters, double hashing, no false negatives) but orders of magnitude
faster, which the pure-Python simulator needs.  The hash-index and
key-mask patterns are pure functions of the filter geometry, so they are
memoised **process-wide** (shared across every SM's bank and every run
of a sweep) rather than per instance.  The standalone class remains the
reference implementation and the Figure 20 microbench subject; property
tests assert the two agree on the no-false-negative invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.bloom import NVMCBFTimingModel, _mix64

__all__ = [
    "ApproximateAssociativeArray", "SearchResult",
]

#: stride separating the hash streams of adjacent groups
_GROUP_SALT = 0x9E3779B97F4A7C15

#: geometry (num_cbfs, num_hashes, cbf_counters) -> shared pattern maps.
#: Patterns depend only on the geometry and the key's two double-hash
#: residues, so every bank of every SM in every run of the process
#: shares one set (at most ``cbf_counters^2`` residue pairs each).
_PATTERN_CACHE: Dict[Tuple[int, int, int], Dict[str, Dict]] = {}

#: per-geometry cap on the key -> pattern memo (the residue-pair maps
#: underneath are naturally tiny; the key maps are what could grow with
#: a huge-footprint workload)
_KEY_CACHE_CAP = 1 << 16


def _shared_patterns(num_cbfs: int, num_hashes: int,
                     cbf_counters: int) -> Dict[str, Dict]:
    """The process-wide pattern maps for one filter geometry."""
    geometry = (num_cbfs, num_hashes, cbf_counters)
    patterns = _PATTERN_CACHE.get(geometry)
    if patterns is None:
        patterns = {
            "slots": {},      # (h1m, h2m) -> tuple[tuple[int, ...], ...]
            "masks": {},      # (h1m, h2m) -> np.ndarray[uint64]
            "key_slots": {},  # key -> shared slots tuple
            "key_masks": {},  # key -> shared mask array
        }
        _PATTERN_CACHE[geometry] = patterns
    return patterns


@dataclass(slots=True)
class SearchResult:
    """Outcome of one approximated tag search.

    Attributes:
        way: matching way index, or None on miss.
        cycles: tag-search latency in cycles (CBF test + polling
            iterations).
        iterations: tag-array polling iterations performed.
        false_positives: positive CBF groups that did not hold the tag.
    """

    way: Optional[int]
    cycles: int
    iterations: int
    false_positives: int


class ApproximateAssociativeArray:
    """Tag-search engine for a 1-set x N-way STT-MRAM bank.

    The array tracks *which way holds which block* and prices each lookup.
    Replacement is FIFO (a rotating cursor over ways) when the array is
    used standalone; when mirroring a cache engine's tag array, the engine
    owns placement through :meth:`note_install` / :meth:`note_evict`.

    Args:
        num_ways: ways in the (single-set) array; Table I uses 512.
        num_cbfs: tag-array partitions, one CBF each (Table I: 128).
        num_hashes: hash functions per CBF (Table I: 3).
        cbf_counters: counter-array length per CBF (Table I: 16; must fit
            the uint64 mask lane, i.e. <= 64).
        num_comparators: tags compared per polling iteration (4).
        exact: when True, model an ideal fully-associative search (single
            cycle, no CBFs) -- the comparison baseline of Figure 7b.
    """

    COUNTER_MAX = 3  # 2-bit saturating counters

    def __init__(
        self,
        num_ways: int = 512,
        num_cbfs: int = 128,
        num_hashes: int = 3,
        cbf_counters: int = 16,
        num_comparators: int = 4,
        exact: bool = False,
    ) -> None:
        if num_ways < 1:
            raise ValueError("num_ways must be >= 1")
        if num_cbfs < 1 or num_cbfs > num_ways:
            raise ValueError("num_cbfs must be in [1, num_ways]")
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        if cbf_counters < 1 or cbf_counters > 64:
            raise ValueError("cbf_counters must be in [1, 64] (one uint64 "
                             "mask lane per group)")
        self.num_ways = num_ways
        self.num_cbfs = num_cbfs
        self.num_hashes = num_hashes
        self.cbf_counters = cbf_counters
        self.num_comparators = num_comparators
        self.exact = exact
        self.timing = NVMCBFTimingModel()
        self._group_size = (num_ways + num_cbfs - 1) // num_cbfs

        #: 2-bit saturating counters, one row per group (plain ints: the
        #: update loop touches at most ``num_hashes`` scalars per call)
        self._counters: List[List[int]] = [
            [0] * cbf_counters for _ in range(num_cbfs)
        ]
        #: per-group nonzero bitmask (see module docstring)
        self._nonzero = np.zeros(num_cbfs, dtype=np.uint64)
        self._patterns = _shared_patterns(num_cbfs, num_hashes, cbf_counters)

        self._way_block: List[int] = [-1] * num_ways
        self._block_way: Dict[int, int] = {}
        self._fifo_cursor = 0

        # lifetime statistics (aggregated into CacheStats by the owner)
        self.tests = 0
        self.updates = 0
        self.false_positive_groups = 0
        self.total_iterations = 0
        self.total_searches = 0

    # ------------------------------------------------------------------
    def _key_hashes(self, key: int) -> Tuple[int, int]:
        h1 = _mix64(key)
        h2 = _mix64(h1 ^ 0xDA942042E4DD58B5) | 1
        return h1 % self.cbf_counters, h2 % self.cbf_counters

    def _build_patterns(self, key: int) -> Tuple[tuple, np.ndarray]:
        """Resolve (and memoise) *key*'s per-group slot/mask patterns."""
        h1m, h2m = self._key_hashes(key)
        residue = (h1m, h2m)
        slots = self._patterns["slots"].get(residue)
        if slots is None:
            m = self.cbf_counters
            salt_step = _GROUP_SALT % m
            slots = tuple(
                tuple(
                    (h1m + (group * salt_step) % m + step * h2m) % m
                    for step in range(self.num_hashes)
                )
                for group in range(self.num_cbfs)
            )
            mask_ints = []
            for group_slots in slots:
                bits = 0
                for s in group_slots:
                    bits |= 1 << s
                mask_ints.append(bits)
            masks = np.array(mask_ints, dtype=np.uint64)
            self._patterns["slots"][residue] = slots
            self._patterns["masks"][residue] = masks
        masks = self._patterns["masks"][residue]
        if len(self._patterns["key_slots"]) < _KEY_CACHE_CAP:
            self._patterns["key_slots"][key] = slots
            self._patterns["key_masks"][key] = masks
        return slots, masks

    def _key_slots(self, key: int) -> tuple:
        cached = self._patterns["key_slots"].get(key)
        if cached is not None:
            return cached
        return self._build_patterns(key)[0]

    def _key_masks(self, key: int) -> np.ndarray:
        cached = self._patterns["key_masks"].get(key)
        if cached is not None:
            return cached
        return self._build_patterns(key)[1]

    def _group_indices(self, key: int, group: int) -> tuple:
        """Per-group counter-slot indices (test helper)."""
        return self._key_slots(key)[group]

    def _group_of_way(self, way: int) -> int:
        return way // self._group_size

    # ------------------------------------------------------------------
    def __contains__(self, block_addr: int) -> bool:
        return block_addr in self._block_way

    def occupancy(self) -> int:
        return len(self._block_way)

    def way_of(self, block_addr: int) -> Optional[int]:
        """Stored way for a block (bypasses timing; used by tests)."""
        return self._block_way.get(block_addr)

    def group_test(self, block_addr: int, group: int) -> bool:
        """Membership test of a single group's CBF (test helper)."""
        row = self._counters[group]
        return all(row[slot] > 0
                   for slot in self._key_slots(block_addr)[group])

    # ------------------------------------------------------------------
    def search(self, block_addr: int) -> SearchResult:
        """Perform (and price) one tag search for *block_addr*."""
        self.total_searches += 1
        actual_way = self._block_way.get(block_addr)

        if self.exact:
            # Ideal fully-associative search: all comparators in parallel.
            self.total_iterations += 1
            return SearchResult(actual_way, 1, 1, 0)

        self.tests += 1
        key_masks = self._key_masks(block_addr)
        positive = (self._nonzero & key_masks) == key_masks

        if actual_way is None:
            # A miss polls every positive group before concluding absent.
            iterations = int(np.count_nonzero(positive))
            false_positives = iterations
        else:
            actual_group = self._group_of_way(actual_way)
            # CBFs have no false negatives: the actual group is positive,
            # and groups are polled in ascending index order.
            position = int(np.count_nonzero(positive[:actual_group]))
            iterations = position + 1
            false_positives = position

        self.total_iterations += iterations
        self.false_positive_groups += false_positives
        cycles = self.timing.test_cycles + max(1, iterations)
        return SearchResult(actual_way, cycles, iterations, false_positives)

    # ------------------------------------------------------------------
    def _cbf_insert(self, block_addr: int, group: int) -> None:
        row = self._counters[group]
        for slot in self._key_slots(block_addr)[group]:
            value = row[slot]
            if value < self.COUNTER_MAX:
                row[slot] = value + 1
                if value == 0:
                    self._nonzero[group] |= np.uint64(1 << slot)
        self.updates += 1

    def _cbf_remove(self, block_addr: int, group: int) -> None:
        row = self._counters[group]
        for slot in self._key_slots(block_addr)[group]:
            value = row[slot]
            # stuck counters stay at max (decrement would risk a false
            # negative -- see repro.core.bloom)
            if 0 < value < self.COUNTER_MAX:
                row[slot] = value - 1
                if value == 1:
                    self._nonzero[group] &= np.uint64(
                        0xFFFFFFFFFFFFFFFF ^ (1 << slot)
                    )
        self.updates += 1

    # ------------------------------------------------------------------
    def install(self, block_addr: int) -> Optional[int]:
        """Place *block_addr* into the FIFO-selected way (standalone use).

        Returns the block address evicted from that way, or None.

        Raises:
            RuntimeError: when the block is already present (the cache
                engine must search before installing).
        """
        if block_addr in self._block_way:
            raise RuntimeError(f"block 0x{block_addr:x} already installed")
        way = self._fifo_cursor
        self._fifo_cursor = (self._fifo_cursor + 1) % self.num_ways
        evicted = self._way_block[way]
        group = self._group_of_way(way)
        if evicted != -1:
            del self._block_way[evicted]
            self._cbf_remove(evicted, group)
        self._way_block[way] = block_addr
        self._block_way[block_addr] = way
        self._cbf_insert(block_addr, group)
        return None if evicted == -1 else evicted

    def remove(self, block_addr: int) -> bool:
        """Invalidate *block_addr*; True when it was present."""
        way = self._block_way.pop(block_addr, None)
        if way is None:
            return False
        self._way_block[way] = -1
        self._cbf_remove(block_addr, self._group_of_way(way))
        return True

    # ------------------------------------------------------------------
    # Mirror mode: the FUSE cache engine owns placement through its
    # authoritative TagArray and keeps this structure in sync so that
    # searches are priced against the true contents.
    def note_install(self, block_addr: int, way: int) -> None:
        """Mirror an install performed by the owning tag array.

        Raises:
            ValueError: when *way* is out of range.
            RuntimeError: when the way already holds a block (the owner
                must evict first).
        """
        if not 0 <= way < self.num_ways:
            raise ValueError(f"way {way} out of range")
        if self._way_block[way] != -1:
            raise RuntimeError(f"way {way} already holds a block")
        if block_addr in self._block_way:
            raise RuntimeError(f"block 0x{block_addr:x} already mirrored")
        self._way_block[way] = block_addr
        self._block_way[block_addr] = way
        self._cbf_insert(block_addr, self._group_of_way(way))

    def note_evict(self, block_addr: int) -> None:
        """Mirror an eviction performed by the owning tag array."""
        self.remove(block_addr)

    # ------------------------------------------------------------------
    @property
    def false_positive_rate(self) -> float:
        """False-positive groups per CBF test opportunity (Figure 20)."""
        if self.tests == 0:
            return 0.0
        # Each search tests every CBF; a clean search polls at most one
        # group.  Rate = wasted positives / total group tests.
        return self.false_positive_groups / (self.tests * self.num_cbfs)
