"""Counting Bloom filters and the NVM-CBF timing model (Section IV-C).

A counting Bloom filter (CBF) answers "might this tag be in my data set?"
with no false negatives.  FUSE places one CBF in front of each partition of
the approximated fully-associative STT-MRAM tag array so that the serialized
tag search only polls partitions whose CBF answers *positive*.

Hardware fidelity notes:

* Counters are 2-bit and **saturating**: once a counter reaches 3 it is
  never incremented or decremented again ("stuck"), because decrementing a
  counter that silently absorbed a fourth increment would create a false
  negative.  This is the standard safe small-counter CBF construction and
  is covered by property tests (a CBF must never report a stored tag as
  absent).
* The paper implements the counter arrays in STT-MRAM (the "NVM-CBF" 2D MTJ
  island) so that a membership *test* completes within a single STT-MRAM
  read -- 591 ps, under one L1D cycle.  :class:`NVMCBFTimingModel` captures
  those constants for the energy/latency accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = [
    "CountingBloomFilter", "NVMCBFTimingModel",
]


def _mix64(value: int) -> int:
    """A 64-bit finalizer-style mixer (splitmix64 constants)."""
    value &= 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


class CountingBloomFilter:
    """A counting Bloom filter with small saturating counters.

    Args:
        num_counters: length of the counter array ("slots"; Table I uses
            16, Figure 20 sweeps 32/64/128).
        num_hashes: hash functions per key (Table I: 3).
        counter_bits: counter width (2 in the NVM-CBF design).
        seed: salts the hash functions so filters are independent.
    """

    def __init__(
        self,
        num_counters: int = 16,
        num_hashes: int = 3,
        counter_bits: int = 2,
        seed: int = 0,
    ) -> None:
        if num_counters < 1:
            raise ValueError("num_counters must be >= 1")
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        if counter_bits < 1:
            raise ValueError("counter_bits must be >= 1")
        self.num_counters = num_counters
        self.num_hashes = num_hashes
        self.counter_max = (1 << counter_bits) - 1
        self._seed = seed
        self._counters: List[int] = [0] * num_counters
        self.inserted = 0

    # ------------------------------------------------------------------
    def _indices(self, key: int) -> List[int]:
        """Counter indices for *key* (double hashing: h1 + i*h2)."""
        h1 = _mix64(key ^ (self._seed * 0x9E3779B97F4A7C15))
        h2 = _mix64(h1 ^ 0xDA942042E4DD58B5) | 1  # odd stride
        return [
            (h1 + i * h2) % self.num_counters for i in range(self.num_hashes)
        ]

    # ------------------------------------------------------------------
    def insert(self, key: int) -> None:
        """Record that *key* joined the data set ("increment")."""
        for idx in self._indices(key):
            if self._counters[idx] < self.counter_max:
                self._counters[idx] += 1
            # Saturated counters stay stuck (see module docstring).
        self.inserted += 1

    def remove(self, key: int) -> None:
        """Record that *key* left the data set ("decrement").

        Decrementing a saturated counter is unsafe (it may have absorbed
        more than ``counter_max`` increments), so stuck counters stay at
        their maximum.  This can only cause extra false positives, never a
        false negative.
        """
        for idx in self._indices(key):
            if 0 < self._counters[idx] < self.counter_max:
                self._counters[idx] -= 1
        if self.inserted > 0:
            self.inserted -= 1

    def test(self, key: int) -> bool:
        """Membership test: False means definitely absent ("negative")."""
        return all(self._counters[idx] > 0 for idx in self._indices(key))

    # ------------------------------------------------------------------
    def counters(self) -> List[int]:
        """Copy of the counter array (tests and diagnostics)."""
        return list(self._counters)

    def reset(self) -> None:
        """Clear all counters."""
        self._counters = [0] * self.num_counters
        self.inserted = 0


@dataclass(frozen=True)
class NVMCBFTimingModel:
    """Latency/energy constants of the STT-MRAM CBF array (Section IV-C).

    The 2D MTJ island shares peripherals across all counter arrays so a
    membership *test* of every CBF completes in parallel within a single
    STT-MRAM read (the paper's CACTI experiment reports 591 ps, below one
    cache cycle).  Increments/decrements ride along with the corresponding
    STT-MRAM data-array write, so they add no standalone latency.

    Attributes:
        test_ps: wall-clock latency of a parallel test, picoseconds.
        cycle_ps: L1D cycle time at 1.4 GHz, picoseconds.
        test_energy_nj: energy of one parallel test over all CBFs.
        update_energy_nj: energy of one increment/decrement.
        area_bytes: total CBF storage (Table I: 512 B).
    """

    test_ps: float = 591.0
    cycle_ps: float = 714.3  # 1 / 1.4 GHz
    test_energy_nj: float = 0.01
    update_energy_nj: float = 0.02
    area_bytes: int = 512

    @property
    def test_cycles(self) -> int:
        """Whole L1D cycles a test costs (0 when it hides in the lookup)."""
        return 0 if self.test_ps <= self.cycle_ps else 1
