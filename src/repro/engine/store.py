"""Disk-backed result store: the L2 of the memoisation hierarchy.

Results are schema-versioned JSON records (one per line):

.. code-block:: json

    {"schema": 1, "key": "<sha256>", "spec": {...}, "result": {...}}

* **schema versioning** -- every record carries
  :data:`~repro.engine.serialize.SCHEMA_VERSION`; records with any other
  tag are skipped on load (and dropped on :meth:`ResultStore.compact`),
  so a simulator change that bumps the version transparently invalidates
  every stale cache entry.
* **append-only writes** -- a put appends one line and updates the
  in-memory index; the newest record for a key wins on load, so
  re-putting a key is harmless.
* **batched appends** -- a bare :meth:`ResultStore.put` opens, appends
  and closes the file (maximally crash-tolerant: the line is durable
  the moment put returns).  Inside a :meth:`ResultStore.batched` block
  -- which the experiment engine wraps around every sweep -- puts write
  through held handles and the store flushes every ``flush_every``
  records (the engine passes its pool chunk size) and at block exit, so
  a sweep of N runs costs one open/close per touched file instead of N.
  Crash tolerance inside a batch weakens only boundedly: a killed
  process loses at most the puts since the last flush (plus whatever
  the OS had not yet made durable -- the store never fsyncs, batched or
  not), and a torn final line is skipped on the next load rather than
  poisoning the file.
* **corruption tolerance** -- unparsable lines (e.g. a truncated final
  line from a killed process) are skipped, never fatal.

The on-disk **layout** is pluggable (see
:mod:`repro.engine.store_backends`): the default ``"jsonl"`` backend is
the original single file, and the ``"sharded"`` backend spreads records
over N per-shard segment files so fleet-scale concurrent writers do not
contend on one flock.  The layout is selected per store by
``--store-backend`` / ``REPRO_STORE_BACKEND`` for *new* stores; an
existing store's on-disk layout always wins, and
:func:`migrate_store` converts between the two losslessly.

The default location is ``~/.cache/repro/results.jsonl``, overridable
via the ``REPRO_STORE`` environment variable or an explicit path
(``repro sweep --store``).  Setting ``REPRO_STORE`` to an empty string
disables the default store.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
from typing import Dict, Iterator, List, Optional, Union

from repro.engine.serialize import (
    SCHEMA_VERSION,
    result_from_dict,
    result_to_dict,
)
from repro.engine.spec import RunKey, RunSpec, spec_to_dict
from repro.engine.store_backends import (
    BACKEND_ENV,
    STORE_BACKENDS,
    ShardedBackend,
    SingleFileBackend,
    _flock,
    default_store_backend,
    detect_backend,
)
from repro.gpu.stats import SimulationResult
from repro.telemetry.metrics import REGISTRY
from repro.telemetry.spans import span

__all__ = [
    "BACKEND_ENV", "DEFAULT_STORE_DIR", "ResultStore", "STORE_BACKENDS",
    "default_store_path", "migrate_store",
]

#: default on-disk location (under the user cache directory)
DEFAULT_STORE_DIR = "~/.cache/repro"

# process-wide store accounting (all ResultStore instances); exposed as
# repro_store_* at GET /metrics
_GETS_HIT = REGISTRY.counter(
    "repro_store_gets_hit", "Store lookups served from disk")
_GETS_MISS = REGISTRY.counter(
    "repro_store_gets_miss", "Store lookups that found nothing")
_PUTS = REGISTRY.counter(
    "repro_store_puts", "Result records appended")
_COMPACTIONS = REGISTRY.counter(
    "repro_store_compactions", "Store files rewritten by compact()")


def default_store_path() -> Optional[pathlib.Path]:
    """Resolve the default store path (honouring ``REPRO_STORE``).

    Returns ``None`` when ``REPRO_STORE`` is set to an empty string,
    which disables persistent caching.
    """
    env = os.environ.get("REPRO_STORE")
    if env is not None:
        if not env.strip():
            return None
        return pathlib.Path(env).expanduser()
    return pathlib.Path(DEFAULT_STORE_DIR).expanduser() / "results.jsonl"


class ResultStore:
    """Persistent (run key -> SimulationResult) mapping on disk.

    The mapping semantics (content-hashed keys, newest record wins,
    schema invalidation, batched appends, corruption tolerance) are
    identical across backends; only the on-disk layout differs.

    Args:
        path: store location -- a JSON-lines file for the ``"jsonl"``
            backend, a directory for ``"sharded"``.  Parents are
            created lazily on first write.
        schema_version: records carrying any other tag are invisible
            (tests override this to simulate stale caches).
        backend: on-disk layout, one of :data:`STORE_BACKENDS`.  When
            omitted, an existing store's detected layout wins, then
            ``REPRO_STORE_BACKEND``, then ``"jsonl"``.
        shards: segment count for a *newly created* sharded store
            (existing stores keep their recorded count).
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        schema_version: int = SCHEMA_VERSION,
        backend: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> None:
        self.path = pathlib.Path(path).expanduser()
        self.schema_version = schema_version
        name = backend or detect_backend(self.path) or default_store_backend()
        if name == "sharded":
            self._backend = ShardedBackend(
                self.path, schema_version, shards=shards)
        elif name == "jsonl":
            self._backend = SingleFileBackend(self.path, schema_version)
        else:
            raise ValueError(
                f"unknown store backend {name!r}; "
                f"expected one of {list(STORE_BACKENDS)}"
            )

    @property
    def backend_name(self) -> str:
        """The active on-disk layout (``"jsonl"`` or ``"sharded"``)."""
        return self._backend.name

    @property
    def _batch_handle(self):
        """Truthy while a :meth:`batched` block is open (kept for
        callers that probe batch state; the handle itself is owned by
        the backend)."""
        return self._backend.batch_active

    # ------------------------------------------------------------------
    def get(self, key: Union[str, RunKey]) -> Optional[SimulationResult]:
        """Fetch a stored result, or ``None`` when absent/stale."""
        digest = key.digest if isinstance(key, RunKey) else key
        record = self._backend.get_record(digest)
        if record is None:
            _GETS_MISS.inc()
            return None
        _GETS_HIT.inc()
        return result_from_dict(record["result"])

    def put(self, spec: RunSpec, result: SimulationResult) -> RunKey:
        """Persist one result (append + index update); returns its key.

        Outside a :meth:`batched` block the append is open-write-close
        (durable on return); inside one it goes through the held handle
        (flushed per ``flush_every`` puts and at block exit).
        """
        key = spec.key()
        record = {
            "schema": self.schema_version,
            "key": key.digest,
            "spec": spec_to_dict(spec),
            "result": result_to_dict(result),
        }
        with span("store_put", key=key.digest[:12]):
            self._backend.put_record(key.digest, record)
        _PUTS.inc()
        return key

    def put_record(self, key: Union[str, RunKey], record: dict) -> None:
        """Persist one *raw* record dict unchanged (migration path --
        normal writers use :meth:`put`)."""
        digest = key.digest if isinstance(key, RunKey) else key
        self._backend.put_record(digest, record)
        _PUTS.inc()

    def flush(self) -> None:
        """Push batched writes to the OS (no-op outside a batch)."""
        self._backend.flush()

    @contextlib.contextmanager
    def batched(self, flush_every: int = 16) -> Iterator["ResultStore"]:
        """Hold append handles open across many :meth:`put` calls.

        Reentrant: nested blocks reuse the outer handles (the outer
        block owns closing them).  See the module docstring for the
        crash-tolerance semantics.
        """
        with self._backend.batched(flush_every):
            yield self

    def record(self, key: Union[str, RunKey]) -> Optional[dict]:
        """The raw stored record for *key* (``{"schema", "key", "spec",
        "result"}``), or ``None`` when absent/stale.

        This is what the service's ``/v1/results`` endpoint serves: the
        result payload together with the spec it was computed from
        (provenance), without deserialising into simulation objects.
        """
        digest = key.digest if isinstance(key, RunKey) else key
        return self._backend.get_record(digest)

    def keys(self) -> Iterator[str]:
        """Iterate over the digests of every live record."""
        return iter(self._backend.keys())

    def files(self) -> List[pathlib.Path]:
        """Every on-disk file holding records (one for ``jsonl``, the
        existing segments for ``sharded``)."""
        return self._backend.files()

    def info(self) -> Dict[str, object]:
        """Operator-facing snapshot: path, backend, live/stale record
        counts and the on-disk size in bytes (0 when nothing exists
        yet).  Sharded stores add ``shards`` and a per-shard
        ``shard_info`` breakdown."""
        data = self._backend.info()
        data["path"] = str(self.path)
        data["schema_version"] = self.schema_version
        return data

    # ------------------------------------------------------------------
    def __contains__(self, key: Union[str, RunKey]) -> bool:
        digest = key.digest if isinstance(key, RunKey) else key
        return self._backend.get_record(digest) is not None

    def __len__(self) -> int:
        return len(self._backend)

    @property
    def stale_records(self) -> int:
        """Records skipped on load because their schema tag mismatched."""
        return self._backend.stale_records

    def compact(self) -> int:
        """Rewrite the store keeping only current-schema records (one
        per key); returns the number of live records.

        Each file is rewritten under an exclusive writer lock and
        re-read beneath it, so records appended by another process
        after this store loaded its index are preserved, and a process
        currently *holding* a writer lock (a sweep mid-append) makes
        compaction refuse rather than orphan its inode.  On the sharded
        backend the rewrite is per shard: a refused shard leaves every
        other shard compacted.

        Raises:
            RuntimeError: inside a :meth:`batched` block (the rewrite
                would orphan the held append handles and silently drop
                their subsequent writes), or while another process
                holds a writer lock on a file being rewritten.
        """
        live = self._backend.compact()
        _COMPACTIONS.inc()
        return live


def migrate_store(source: ResultStore, dest: ResultStore) -> int:
    """Copy every live record from *source* into *dest* (one-shot
    ``repro store migrate``); returns the number of records copied.

    Records are copied raw (bytes-for-bytes payloads, no re-keying), so
    the migration is lossless for everything visible: stale-schema and
    corrupt lines are dropped exactly as a :meth:`ResultStore.compact`
    would drop them.

    Raises:
        ValueError: *dest* already holds records (a partial overwrite
            could silently shadow newer results; point the migration at
            a fresh path instead).
    """
    if len(dest) > 0:
        raise ValueError(
            f"destination store {dest.path} already holds {len(dest)} "
            "record(s); migrate into a fresh path"
        )
    copied = 0
    with dest.batched(flush_every=64):
        for digest in source.keys():
            record = source.record(digest)
            if record is None:  # pragma: no cover - raced compaction
                continue
            dest.put_record(digest, record)
            copied += 1
    return copied
