"""Disk-backed result store: the L2 of the memoisation hierarchy.

Results live in an append-only JSON-lines file (one record per line):

.. code-block:: json

    {"schema": 1, "key": "<sha256>", "spec": {...}, "result": {...}}

* **schema versioning** -- every record carries
  :data:`~repro.engine.serialize.SCHEMA_VERSION`; records with any other
  tag are skipped on load (and dropped on :meth:`ResultStore.compact`),
  so a simulator change that bumps the version transparently invalidates
  every stale cache entry.
* **append-only writes** -- a put appends one line and updates the
  in-memory index; the newest record for a key wins on load, so
  re-putting a key is harmless.
* **batched appends** -- a bare :meth:`ResultStore.put` opens, appends
  and closes the file (maximally crash-tolerant: the line is durable
  the moment put returns).  Inside a :meth:`ResultStore.batched` block
  -- which the experiment engine wraps around every sweep -- puts write
  through one held handle and the store flushes every ``flush_every``
  records (the engine passes its pool chunk size) and at block exit, so
  a sweep of N runs costs one open/close instead of N.  Crash tolerance
  inside a batch weakens only boundedly: a killed process loses at most
  the puts since the last flush (plus whatever the OS had not yet made
  durable -- the store never fsyncs, batched or not), and a torn final
  line is skipped on the next load rather than poisoning the file.
* **corruption tolerance** -- unparsable lines (e.g. a truncated final
  line from a killed process) are skipped, never fatal.

The default location is ``~/.cache/repro/results.jsonl``, overridable
via the ``REPRO_STORE`` environment variable or an explicit path
(``repro sweep --store``).  Setting ``REPRO_STORE`` to an empty string
disables the default store.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
from typing import Dict, Iterator, Optional, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.engine.serialize import (
    SCHEMA_VERSION,
    result_from_dict,
    result_to_dict,
)
from repro.engine.spec import RunKey, RunSpec, spec_to_dict
from repro.gpu.stats import SimulationResult
from repro.telemetry.metrics import REGISTRY
from repro.telemetry.spans import span

__all__ = [
    "DEFAULT_STORE_DIR", "ResultStore", "default_store_path",
]

#: default on-disk location (under the user cache directory)
DEFAULT_STORE_DIR = "~/.cache/repro"

# process-wide store accounting (all ResultStore instances); exposed as
# repro_store_* at GET /metrics
_GETS_HIT = REGISTRY.counter(
    "repro_store_gets_hit", "Store lookups served from disk")
_GETS_MISS = REGISTRY.counter(
    "repro_store_gets_miss", "Store lookups that found nothing")
_PUTS = REGISTRY.counter(
    "repro_store_puts", "Result records appended")
_COMPACTIONS = REGISTRY.counter(
    "repro_store_compactions", "Store files rewritten by compact()")


def _flock(handle, exclusive: bool, blocking: bool = True) -> bool:
    """Advisory-lock an open store handle; ``True`` when acquired.

    Writers (bare puts, :meth:`ResultStore.batched` blocks) take the
    lock shared; :meth:`ResultStore.compact` takes it exclusive, so a
    rewrite can never orphan a live writer's inode (the writer would
    keep appending to the replaced file and silently lose every
    subsequent record).  On platforms without :mod:`fcntl` the lock is
    a no-op that reports success -- same guarantees as before.
    """
    if fcntl is None:
        return True
    flags = fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
    if not blocking:
        flags |= fcntl.LOCK_NB
    try:
        fcntl.flock(handle.fileno(), flags)
        return True
    except OSError:
        return False


def default_store_path() -> Optional[pathlib.Path]:
    """Resolve the default store path (honouring ``REPRO_STORE``).

    Returns ``None`` when ``REPRO_STORE`` is set to an empty string,
    which disables persistent caching.
    """
    env = os.environ.get("REPRO_STORE")
    if env is not None:
        if not env.strip():
            return None
        return pathlib.Path(env).expanduser()
    return pathlib.Path(DEFAULT_STORE_DIR).expanduser() / "results.jsonl"


class ResultStore:
    """Persistent (run key -> SimulationResult) mapping on disk.

    Args:
        path: JSON-lines file; parent directories are created lazily on
            first write.
        schema_version: records carrying any other tag are invisible
            (tests override this to simulate stale caches).
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        schema_version: int = SCHEMA_VERSION,
    ) -> None:
        self.path = pathlib.Path(path).expanduser()
        self.schema_version = schema_version
        self._index: Dict[str, dict] = {}
        self._stale_records = 0
        self._loaded = False
        self._batch_handle = None
        self._batch_pending = 0
        self._batch_flush_every = 1

    # ------------------------------------------------------------------
    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated/corrupt line: skip, don't die
                if record.get("schema") != self.schema_version:
                    self._stale_records += 1
                    continue
                key = record.get("key")
                if key:
                    self._index[key] = record

    # ------------------------------------------------------------------
    def _open_locked_append(self):
        """Append handle holding the shared writer lock.

        If a concurrent :meth:`compact` replaced the file between our
        open and the lock acquisition, the handle points at the
        orphaned inode -- writes there would vanish.  Re-open until the
        locked handle and the path agree (bounded: compaction is rare
        and quick).
        """
        for _ in range(5):
            handle = self.path.open("a", encoding="utf-8")
            _flock(handle, exclusive=False)
            if fcntl is None:
                return handle
            try:
                if (os.fstat(handle.fileno()).st_ino
                        == self.path.stat().st_ino):
                    return handle
            except OSError:
                pass
            handle.close()
        return self.path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------
    def get(self, key: Union[str, RunKey]) -> Optional[SimulationResult]:
        """Fetch a stored result, or ``None`` when absent/stale."""
        self._ensure_loaded()
        digest = key.digest if isinstance(key, RunKey) else key
        record = self._index.get(digest)
        if record is None:
            _GETS_MISS.inc()
            return None
        _GETS_HIT.inc()
        return result_from_dict(record["result"])

    def put(self, spec: RunSpec, result: SimulationResult) -> RunKey:
        """Persist one result (append + index update); returns its key.

        Outside a :meth:`batched` block the append is open-write-close
        (durable on return); inside one it goes through the held handle
        (flushed per ``flush_every`` puts and at block exit).
        """
        self._ensure_loaded()
        key = spec.key()
        record = {
            "schema": self.schema_version,
            "key": key.digest,
            "spec": spec_to_dict(spec),
            "result": result_to_dict(result),
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        with span("store_put", key=key.digest[:12]):
            if self._batch_handle is not None:
                self._batch_handle.write(line)
                self._batch_pending += 1
                if self._batch_pending >= self._batch_flush_every:
                    self.flush()
            else:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with self._open_locked_append() as handle:
                    handle.write(line)
        self._index[key.digest] = record
        _PUTS.inc()
        return key

    def flush(self) -> None:
        """Push batched writes to the OS (no-op outside a batch)."""
        if self._batch_handle is not None:
            self._batch_handle.flush()
            self._batch_pending = 0

    @contextlib.contextmanager
    def batched(self, flush_every: int = 16) -> Iterator["ResultStore"]:
        """Hold one append handle open across many :meth:`put` calls.

        Reentrant: nested blocks reuse the outer handle (the outer block
        owns closing it).  See the module docstring for the
        crash-tolerance semantics.
        """
        if self._batch_handle is not None:
            yield self  # nested: the outer batch owns the handle
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._batch_flush_every = max(1, flush_every)
        self._batch_handle = self._open_locked_append()
        try:
            yield self
        finally:
            handle, self._batch_handle = self._batch_handle, None
            self._batch_pending = 0
            handle.close()

    def record(self, key: Union[str, RunKey]) -> Optional[dict]:
        """The raw stored record for *key* (``{"schema", "key", "spec",
        "result"}``), or ``None`` when absent/stale.

        This is what the service's ``/v1/results`` endpoint serves: the
        result payload together with the spec it was computed from
        (provenance), without deserialising into simulation objects.
        """
        self._ensure_loaded()
        digest = key.digest if isinstance(key, RunKey) else key
        return self._index.get(digest)

    def keys(self) -> Iterator[str]:
        """Iterate over the digests of every live record."""
        self._ensure_loaded()
        return iter(list(self._index))

    def info(self) -> Dict[str, object]:
        """Operator-facing snapshot: path, live/stale record counts and
        the on-disk size in bytes (0 when the file does not exist)."""
        self._ensure_loaded()
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {
            "path": str(self.path),
            "records": len(self._index),
            "stale_records": self._stale_records,
            "schema_version": self.schema_version,
            "size_bytes": size,
        }

    # ------------------------------------------------------------------
    def __contains__(self, key: Union[str, RunKey]) -> bool:
        self._ensure_loaded()
        digest = key.digest if isinstance(key, RunKey) else key
        return digest in self._index

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._index)

    @property
    def stale_records(self) -> int:
        """Records skipped on load because their schema tag mismatched."""
        self._ensure_loaded()
        return self._stale_records

    def compact(self) -> int:
        """Rewrite the file keeping only current-schema records (one per
        key); returns the number of live records.

        The rewrite holds the writer lock exclusively and re-reads the
        file under it, so records appended by another process after
        this store loaded its index are preserved, and a process
        currently *holding* a writer lock (a sweep mid-append) makes
        compaction refuse rather than orphan its inode.

        Raises:
            RuntimeError: inside a :meth:`batched` block (the rewrite
                would orphan the held append handle and silently drop
                its subsequent writes), or while another process holds
                a writer lock on the file.
        """
        if self._batch_handle is not None:
            raise RuntimeError("compact() is not allowed inside batched()")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as guard:
            if not _flock(guard, exclusive=True, blocking=False):
                raise RuntimeError(
                    f"{self.path} is being written by another process; "
                    "retry when its sweep finishes"
                )
            # re-read under the lock: another process may have appended
            # records since this store first loaded its index
            self._loaded = False
            self._index.clear()
            self._stale_records = 0
            self._ensure_loaded()
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with tmp.open("w", encoding="utf-8") as handle:
                for record in self._index.values():
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
            tmp.replace(self.path)
        self._stale_records = 0
        _COMPACTIONS.inc()
        return len(self._index)
