"""Run identity and execution: ``RunSpec``, ``RunKey``, ``execute_spec``.

A :class:`RunSpec` is the complete, picklable description of one
simulation: the fully-resolved :class:`~repro.core.factory.L1DConfig`,
the workload, the GPU profile, the trace scale, the seed and the SM
count.  :class:`RunKey` derives a *stable content hash* from it, which
is what every cache layer (the in-process :class:`~repro.harness.runner.
Runner` memo, the on-disk :class:`~repro.engine.store.ResultStore`) keys
on -- two logically identical configs built by different code paths map
to the same key.

:func:`execute_spec` is the single execution path shared by the serial
runner and the parallel worker pool, which is what makes parallel sweep
results bit-identical to serial ones.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.core.factory import L1DConfig, l1d_config, make_l1d
from repro.energy.model import compute_energy, l1d_energy_params
from repro.engine.serialize import config_to_dict
from repro.gpu.config import GPUConfig, fermi_like, volta_like
from repro.gpu.simulator import GPUSimulator
from repro.gpu.stats import SimulationResult
from repro.workloads.benchmarks import benchmark
from repro.workloads.trace import TraceScale

#: named machine profiles a spec may reference
GPU_PROFILES = {
    "fermi": fermi_like,
    "volta": volta_like,
}

#: named trace-scale presets a spec may reference
SCALE_PRESETS = {
    "smoke": TraceScale.smoke,
    "test": TraceScale.test,
    "bench": TraceScale.bench,
}


def gpu_profile(name: str) -> GPUConfig:
    """Instantiate a named machine profile.

    Raises:
        ValueError: for unknown names.
    """
    try:
        return GPU_PROFILES[name]()
    except KeyError:
        raise ValueError(f"unknown gpu profile {name!r}")


def scale_preset(name: str) -> TraceScale:
    """Instantiate a named trace-scale preset.

    Raises:
        ValueError: for unknown names.
    """
    try:
        return SCALE_PRESETS[name]()
    except KeyError:
        raise ValueError(f"unknown scale {name!r}")


@dataclass(frozen=True)
class RunSpec:
    """A fully-resolved, picklable description of one simulation run.

    ``trace_salt`` snapshots the global
    :attr:`~repro.workloads.kernels.KernelModel.TRACE_SALT` at build
    time: carrying it in the spec (rather than reading the global at
    execution time) keeps worker processes faithful to the submitting
    process even under spawn-style pools that re-import the modules.
    """

    l1d: L1DConfig
    workload: str
    gpu_profile: str = "fermi"
    scale: str = "bench"
    seed: int = 0
    num_sms: int = 15
    trace_salt: int = 0

    @classmethod
    def build(
        cls,
        config: Union[str, L1DConfig],
        workload: str,
        gpu_profile: str = "fermi",
        scale: str = "bench",
        seed: int = 0,
        num_sms: Optional[int] = None,
        trace_salt: Optional[int] = None,
    ) -> "RunSpec":
        """Resolve a named or custom L1D config into a spec.

        ``num_sms=None`` takes the GPU profile's own SM count;
        ``trace_salt=None`` snapshots the current global salt.
        """
        from repro.workloads.kernels import KernelModel

        if gpu_profile not in GPU_PROFILES:
            raise ValueError(f"unknown gpu profile {gpu_profile!r}")
        cfg = config if isinstance(config, L1DConfig) else l1d_config(config)
        if num_sms is None:
            num_sms = GPU_PROFILES[gpu_profile]().num_sms
        if trace_salt is None:
            trace_salt = KernelModel.TRACE_SALT
        return cls(
            l1d=cfg, workload=workload, gpu_profile=gpu_profile,
            scale=scale, seed=seed, num_sms=num_sms, trace_salt=trace_salt,
        )

    def key(self) -> "RunKey":
        return RunKey.for_spec(self)


@dataclass(frozen=True)
class RunKey:
    """Stable content-hashed identity of one run.

    The digest is a SHA-256 over the canonical JSON encoding of the
    spec's semantic content.  The cosmetic ``description`` field of the
    L1D config is excluded, so e.g. two ``ratio_config(1/2)`` instances
    reconstructed in different sweeps collapse to one key.
    """

    digest: str

    @classmethod
    def for_spec(cls, spec: RunSpec) -> "RunKey":
        payload = spec_to_dict(spec)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return cls(digest=hashlib.sha256(canonical.encode()).hexdigest())

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.digest


def spec_to_dict(spec: RunSpec) -> Dict:
    """Canonical dict form of a spec (hash input; also stored for
    provenance next to every persisted result).

    The trace salt is part of run identity: it changes every generated
    trace, so results computed under different salts must never satisfy
    each other from the store.
    """
    l1d = config_to_dict(spec.l1d)
    l1d.pop("description", None)  # cosmetic, not part of run identity
    return {
        "l1d": l1d,
        "workload": spec.workload,
        "gpu_profile": spec.gpu_profile,
        "scale": spec.scale,
        "seed": spec.seed,
        "num_sms": spec.num_sms,
        "trace_salt": spec.trace_salt,
    }


def execute_spec(spec: RunSpec) -> SimulationResult:
    """Run one simulation described by *spec* (the only execution path).

    Builds the machine, generates the workload trace, simulates, and
    attaches the energy report -- exactly what the serial runner did
    before the engine existed, so results are identical either way.
    """
    from repro.workloads.kernels import KernelModel

    machine = gpu_profile(spec.gpu_profile).with_overrides(
        num_sms=spec.num_sms
    )
    scale = scale_preset(spec.scale)
    # apply the spec's snapshotted salt for the whole run (traces may be
    # generated lazily while the simulator drains the warp streams): a
    # worker process that re-imported the modules (spawn pools) must
    # reproduce the submitting process's traces, not the module default's
    previous_salt = KernelModel.TRACE_SALT
    KernelModel.TRACE_SALT = spec.trace_salt
    try:
        model = benchmark(
            spec.workload,
            num_sms=machine.num_sms,
            warps_per_sm=scale.warps_per_sm,
            scale=scale,
            seed=spec.seed,
        )
        simulator = GPUSimulator(
            machine,
            l1d_factory=lambda: make_l1d(spec.l1d),
            warp_streams=model.streams(),
            warps_per_sm=scale.warps_per_sm,
        )
        result = simulator.run(
            workload_name=spec.workload, config_name=spec.l1d.name
        )
    finally:
        KernelModel.TRACE_SALT = previous_salt
    result.energy = compute_energy(
        result,
        l1d_params=l1d_energy_params(spec.l1d.name),
        core_clock_ghz=machine.core_clock_ghz,
        net_hops=machine.net_hops,
    )
    return result
