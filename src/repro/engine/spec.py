"""Run identity and execution: ``RunSpec``, ``RunKey``, ``execute_spec``.

A :class:`RunSpec` is the complete, picklable description of one
simulation: the fully-resolved :class:`~repro.core.factory.L1DConfig`,
the workload, the GPU profile, the trace scale, the seed and the SM
count.  :class:`RunKey` derives a *stable content hash* from it, which
is what every cache layer (the in-process :class:`~repro.harness.runner.
Runner` memo, the on-disk :class:`~repro.engine.store.ResultStore`) keys
on -- two logically identical configs built by different code paths map
to the same key.

:func:`execute_spec` is the single execution path shared by the serial
runner and the parallel worker pool, which is what makes parallel sweep
results bit-identical to serial ones.

Trace generation is factored out of execution: :func:`trace_key` hashes
the subset of a spec that determines the workload trace (everything but
the L1D config and the GPU timing profile), and :func:`arena_for_spec`
compiles that trace exactly once per key into a
:class:`~repro.workloads.arena.PackedTraceArena` -- every run sharing
the key (a whole config sweep, every repeat in a benchmark loop) replays
the same packed buffers.  Workers in a fork-style pool inherit the
parent's arenas via copy-on-write; spawn-style workers rebuild them from
the engine's on-disk spill files (see
:meth:`~repro.engine.engine.ExperimentEngine.run_specs`).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.core.factory import L1DConfig, l1d_config, make_l1d
from repro.energy.model import compute_energy, l1d_energy_params
from repro.engine.serialize import config_from_dict, config_to_dict
from repro.gpu.config import GPUConfig, fermi_like, volta_like
from repro.gpu.stats import SimulationResult
from repro.telemetry.spans import span
from repro.telemetry.timeline import TimelineSampler
from repro.workloads.benchmarks import TRACE_PREFIX, benchmark
from repro.workloads.trace import TraceScale

__all__ = [
    "GPU_PROFILES", "RunKey", "RunSpec", "SCALE_PRESETS", "arena_for_spec",
    "execute_spec", "gpu_profile", "scale_preset", "spec_from_dict",
    "spec_to_dict", "trace_key",
]

#: named machine profiles a spec may reference
GPU_PROFILES = {
    "fermi": fermi_like,
    "volta": volta_like,
}

#: named trace-scale presets a spec may reference
SCALE_PRESETS = {
    "smoke": TraceScale.smoke,
    "test": TraceScale.test,
    "bench": TraceScale.bench,
}


def gpu_profile(name: str) -> GPUConfig:
    """Instantiate a named machine profile.

    Raises:
        ValueError: for unknown names.
    """
    try:
        return GPU_PROFILES[name]()
    except KeyError:
        raise ValueError(f"unknown gpu profile {name!r}")


def scale_preset(name: str) -> TraceScale:
    """Instantiate a named trace-scale preset.

    Raises:
        ValueError: for unknown names.
    """
    try:
        return SCALE_PRESETS[name]()
    except KeyError:
        raise ValueError(f"unknown scale {name!r}")


@dataclass(frozen=True)
class RunSpec:
    """A fully-resolved, picklable description of one simulation run.

    ``trace_salt`` snapshots the global
    :attr:`~repro.workloads.kernels.KernelModel.TRACE_SALT` at build
    time: carrying it in the spec (rather than reading the global at
    execution time) keeps worker processes faithful to the submitting
    process even under spawn-style pools that re-import the modules.

    ``trace_sha256`` is the content hash of the trace file for
    ``trace:<path>`` workloads (``None`` for generated workloads).  It
    is part of the run identity: the same path holding different trace
    bytes must never satisfy each other from the result store, and
    :func:`execute_spec` refuses to run against a file that changed
    after the spec was built.

    ``timeline_interval`` opts the run into timeline sampling (a
    sample every that many cycles; 0 -- the default -- disables it).
    It is part of the run identity *only when set*: sampling never
    perturbs the simulation, but a stored result either carries the
    series or it does not, so timeline runs key separately while every
    pre-existing key stays byte-identical.

    ``backend`` selects the execution backend (``interp``/``fast``, see
    :mod:`repro.backend`; the empty default defers to ``REPRO_BACKEND``
    at execution time).  Backends produce **bit-identical** results, so
    the backend is *excluded* from :class:`RunKey`: a stored result
    satisfies requests from either backend, and a sweep re-run under
    ``fast`` hits the interpreter's cache entries.
    """

    l1d: L1DConfig
    workload: str
    gpu_profile: str = "fermi"
    scale: str = "bench"
    seed: int = 0
    num_sms: int = 15
    trace_salt: int = 0
    trace_sha256: Optional[str] = None
    timeline_interval: int = 0
    backend: str = ""

    @classmethod
    def build(
        cls,
        config: Union[str, L1DConfig],
        workload: str,
        gpu_profile: str = "fermi",
        scale: str = "bench",
        seed: int = 0,
        num_sms: Optional[int] = None,
        trace_salt: Optional[int] = None,
        timeline_interval: int = 0,
        backend: str = "",
    ) -> "RunSpec":
        """Resolve a named or custom L1D config into a spec.

        ``num_sms=None`` takes the GPU profile's own SM count;
        ``trace_salt=None`` snapshots the current global salt.  For
        ``trace:<path>`` workloads the trace file is hashed here, so
        the spec (and its :class:`RunKey`) pins the file's content --
        and because replay consults only the file (never the seed,
        salt or shape flags), ``num_sms``/``scale``/``seed``/
        ``trace_salt`` are all normalised from the header: two replays
        of the same trace share one store key no matter what flags
        their callers passed.
        """
        from repro.workloads.kernels import KernelModel

        if gpu_profile not in GPU_PROFILES:
            raise ValueError(f"unknown gpu profile {gpu_profile!r}")
        cfg = config if isinstance(config, L1DConfig) else l1d_config(config)
        if num_sms is None:
            num_sms = GPU_PROFILES[gpu_profile]().num_sms
        if trace_salt is None:
            trace_salt = KernelModel.TRACE_SALT
        trace_hash = None
        if workload.startswith(TRACE_PREFIX):
            from repro.workloads.tracefile import load_trace, trace_sha256

            path = workload[len(TRACE_PREFIX):]
            trace_hash = trace_sha256(path)
            meta = load_trace(path).meta
            num_sms = meta.num_sms
            scale = (
                meta.scale if meta.scale in SCALE_PRESETS else "test"
            )
            seed = meta.seed
            trace_salt = meta.trace_salt
        if timeline_interval < 0:
            raise ValueError(
                f"timeline_interval must be >= 0: {timeline_interval}"
            )
        if backend:
            from repro.backend import resolve_backend

            backend = resolve_backend(backend)  # validates the name
        return cls(
            l1d=cfg, workload=workload, gpu_profile=gpu_profile,
            scale=scale, seed=seed, num_sms=num_sms, trace_salt=trace_salt,
            trace_sha256=trace_hash, timeline_interval=timeline_interval,
            backend=backend,
        )

    def key(self) -> "RunKey":
        return RunKey.for_spec(self)


@dataclass(frozen=True)
class RunKey:
    """Stable content-hashed identity of one run.

    The digest is a SHA-256 over the canonical JSON encoding of the
    spec's semantic content.  The cosmetic ``description`` field of the
    L1D config is excluded, so e.g. two ``ratio_config(1/2)`` instances
    reconstructed in different sweeps collapse to one key.
    """

    digest: str

    @classmethod
    def for_spec(cls, spec: RunSpec) -> "RunKey":
        payload = spec_to_dict(spec)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return cls(digest=hashlib.sha256(canonical.encode()).hexdigest())

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.digest


def spec_to_dict(spec: RunSpec) -> Dict:
    """Canonical dict form of a spec (hash input; also stored for
    provenance next to every persisted result).

    The trace salt is part of run identity: it changes every generated
    trace, so results computed under different salts must never satisfy
    each other from the store.  The trace-file content hash is included
    only when present, so the identities (and store keys) of all
    generated-workload runs are unchanged from before trace support.
    """
    l1d = config_to_dict(spec.l1d)
    l1d.pop("description", None)  # cosmetic, not part of run identity
    payload = {
        "l1d": l1d,
        "workload": spec.workload,
        "gpu_profile": spec.gpu_profile,
        "scale": spec.scale,
        "seed": spec.seed,
        "num_sms": spec.num_sms,
        "trace_salt": spec.trace_salt,
    }
    if spec.trace_sha256 is not None:
        payload["trace_sha256"] = spec.trace_sha256
    if spec.timeline_interval:
        # included only when sampling is on, so the identities (and
        # store keys) of every non-timeline run are unchanged
        payload["timeline_interval"] = spec.timeline_interval
    # spec.backend is deliberately absent: backends are bit-identical,
    # so it is not part of run identity (see RunSpec's docstring)
    return payload


def spec_from_dict(payload: Dict) -> RunSpec:
    """Rebuild a :class:`RunSpec` from its :func:`spec_to_dict` form.

    This is the worker wire format: a scheduler leases runs as
    ``{"key", "spec"}`` payloads and the worker reconstructs the spec
    here.  The round trip is identity-preserving --
    ``RunKey.for_spec(spec_from_dict(spec_to_dict(s))) == s.key()`` --
    which the worker verifies before executing, so a corrupted or
    mismatched payload is rejected instead of poisoning the store.
    ``backend`` is not part of the payload (not run identity); it
    stays empty and defers to ``REPRO_BACKEND`` on the executing host.

    Raises:
        ValueError: missing or malformed fields.
    """
    try:
        return RunSpec(
            l1d=config_from_dict(dict(payload["l1d"])),
            workload=str(payload["workload"]),
            gpu_profile=str(payload["gpu_profile"]),
            scale=str(payload["scale"]),
            seed=int(payload["seed"]),
            num_sms=int(payload["num_sms"]),
            trace_salt=int(payload["trace_salt"]),
            trace_sha256=payload.get("trace_sha256"),
            timeline_interval=int(payload.get("timeline_interval", 0)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"malformed spec payload: {error}") from error


def trace_key(spec: RunSpec) -> str:
    """Content hash of the spec fields that determine its workload trace.

    This is :func:`spec_to_dict` minus the L1D config and the GPU timing
    profile -- neither influences the instruction stream (the machine
    *shape* that does, ``num_sms``/``scale``, is already resolved into
    the spec).  Every run sharing the key replays one packed arena.
    """
    payload = spec_to_dict(spec)
    del payload["l1d"]
    del payload["gpu_profile"]
    # timeline sampling observes the run without touching the trace
    payload.pop("timeline_interval", None)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def arena_for_spec(spec: RunSpec, arena_dir=None):
    """The packed trace arena for *spec*, compiled at most once per key.

    Resolution order on an in-process cache miss:

    1. a spill file ``<arena_dir>/<trace_key>.jsonl`` (the engine writes
       these for spawn-style worker pools; ``REPRO_ARENA_DIR`` points
       user runs at a persistent cross-process arena directory) -- a
       spill that fails to load is ignored and the trace is regenerated;
    2. the workload's kernel model, generated under the spec's
       snapshotted trace salt and packed.

    ``trace:<path>`` workloads never spill (the trace file itself is the
    on-disk form; :mod:`repro.workloads.tracefile` memoises its parse).
    """
    import os

    from repro.workloads.arena import PackedTraceArena, cached_arena
    from repro.workloads.kernels import KernelModel

    key = trace_key(spec)
    if arena_dir is None:
        arena_dir = os.environ.get("REPRO_ARENA_DIR") or None
    is_trace_workload = spec.workload.startswith(TRACE_PREFIX)

    def build() -> PackedTraceArena:
        if arena_dir is not None and not is_trace_workload:
            from repro.workloads.tracefile import load_spilled_arena

            spilled = load_spilled_arena(
                pathlib.Path(arena_dir) / f"{key}.jsonl", spec
            )
            if spilled is not None:
                return spilled
        scale = scale_preset(spec.scale)
        # generate under the spec's snapshotted salt: a worker process
        # that re-imported the modules (spawn pools) must reproduce the
        # submitting process's traces, not the module default's
        previous_salt = KernelModel.TRACE_SALT
        KernelModel.TRACE_SALT = spec.trace_salt
        try:
            model = benchmark(
                spec.workload,
                num_sms=spec.num_sms,
                warps_per_sm=scale.warps_per_sm,
                scale=scale,
                seed=spec.seed,
            )
            arena = PackedTraceArena.from_model(model)
        finally:
            KernelModel.TRACE_SALT = previous_salt
        if arena_dir is not None and not is_trace_workload:
            from repro.workloads.tracefile import spill_arena

            spill_arena(arena, pathlib.Path(arena_dir) / f"{key}.jsonl",
                        spec)
        return arena

    return cached_arena(key, build)


def execute_spec(spec: RunSpec, arena_dir=None) -> SimulationResult:
    """Run one simulation described by *spec* (the only execution path).

    Builds the machine, obtains the workload's packed trace arena
    (compiled on first use, replayed from cache after -- see
    :func:`arena_for_spec`; *arena_dir* optionally names a spill
    directory for cross-process reuse), simulates, and attaches the
    energy report.
    """
    if spec.workload.startswith(TRACE_PREFIX) and spec.trace_sha256:
        from repro.workloads.tracefile import trace_sha256

        current = trace_sha256(spec.workload[len(TRACE_PREFIX):])
        if current != spec.trace_sha256:
            raise ValueError(
                f"trace file {spec.workload[len(TRACE_PREFIX):]} changed "
                "since this spec was built (content hash "
                f"{current[:12]} != spec's {spec.trace_sha256[:12]}); "
                "rebuild the spec to run against the new trace"
            )
    machine = gpu_profile(spec.gpu_profile).with_overrides(
        num_sms=spec.num_sms
    )
    with span("arena", workload=spec.workload):
        arena = arena_for_spec(spec, arena_dir=arena_dir)
    # the arena is authoritative for the machine shape: generated
    # workloads echo the spec's values back, while trace replays carry
    # their header's shape (which the spec's preset-named scale cannot
    # express for external traces)
    if arena.num_sms != machine.num_sms:
        machine = machine.with_overrides(num_sms=arena.num_sms)
    sampler = (
        TimelineSampler(spec.timeline_interval)
        if spec.timeline_interval else None
    )
    from repro.backend import resolve_backend, simulator_class

    simulator = simulator_class(resolve_backend(spec.backend or None))(
        machine,
        l1d_factory=lambda: make_l1d(spec.l1d),
        warps_per_sm=arena.warps_per_sm,
        arena=arena,
        sampler=sampler,
    )
    with span(
        "simulate", config=spec.l1d.name, workload=spec.workload
    ) as attrs:
        result = simulator.run(
            workload_name=spec.workload, config_name=spec.l1d.name
        )
        attrs["cycles"] = result.cycles
    result.energy = compute_energy(
        result,
        l1d_params=l1d_energy_params(spec.l1d.name),
        core_clock_ghz=machine.core_clock_ghz,
        net_hops=machine.net_hops,
    )
    return result
