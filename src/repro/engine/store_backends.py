"""Pluggable on-disk layouts for the result store.

:class:`~repro.engine.store.ResultStore` is a facade: the mapping
semantics (content-hashed keys, schema-versioned records, newest record
wins, corrupt lines tolerated) live here, behind the
:class:`StoreBackend` protocol, with two layouts:

* :class:`SingleFileBackend` (``"jsonl"``) -- the original one-file
  JSON-lines store, byte-compatible with every store written before the
  backend split.  One advisory ``flock`` guards the whole file, so many
  concurrent writers serialise on it.
* :class:`ShardedBackend` (``"sharded"``) -- a directory of N segment
  files (``shard-00.jsonl`` ..), each holding the records whose run-key
  digest routes to it by leading hex prefix.  Locking and
  :meth:`~JsonlSegment.compact` are **per shard**: concurrent writers
  touching different shards never contend, and a compaction refused by
  one busy shard leaves every other shard compacted.  The shard count
  is fixed at creation and recorded in ``shards.json`` (records would
  otherwise become unreachable after a re-route).

Both layouts are built from the same :class:`JsonlSegment` -- one
flock-guarded JSON-lines file with an in-memory index, batched append
handles and a lock-holding compact -- so their crash-recovery behaviour
(at most the torn final record lost, stale schemas invisible) is
identical by construction.  ``tests/test_store_backends.py`` drives the
same operation sequences against both and asserts the visible state
matches; ``tests/test_store_faults.py`` pins the recovery contract
under writer kills, truncation and corruption.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
from typing import Dict, Iterator, List, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.telemetry.metrics import REGISTRY

__all__ = [
    "BACKEND_ENV", "DEFAULT_SHARDS", "JsonlSegment", "SHARDS_ENV",
    "ShardedBackend", "SingleFileBackend", "STORE_BACKENDS",
    "default_store_backend", "detect_backend",
]

#: backend names accepted by ``REPRO_STORE_BACKEND`` / ``--store-backend``
STORE_BACKENDS = ("jsonl", "sharded")

#: environment knob selecting the backend for *new* stores (an existing
#: store's on-disk layout always wins; see :func:`detect_backend`)
BACKEND_ENV = "REPRO_STORE_BACKEND"

#: environment knob for the shard count of *newly created* sharded stores
SHARDS_ENV = "REPRO_STORE_SHARDS"

#: default segment count for new sharded stores; 16 shards = one leading
#: hex digit, plenty of write parallelism for a worker fleet while
#: keeping ``repro store info`` output readable
DEFAULT_SHARDS = 16

#: hard bound on the shard count (matches the metrics label-cardinality
#: cap so per-shard counters can never overflow into ``overflow``)
MAX_SHARDS = 256

#: metadata file naming a directory as a sharded store
SHARD_META = "shards.json"

# per-shard accounting (sharded backend only), exposed as
# repro_store_shard_* at GET /metrics
_SHARD_PUTS = REGISTRY.counter(
    "repro_store_shard_puts",
    "Result records appended per shard (sharded backend)",
    labelnames=("shard",),
)
_SHARD_COMPACTIONS = REGISTRY.counter(
    "repro_store_shard_compactions",
    "Per-shard segment rewrites (sharded backend)",
    labelnames=("shard",),
)


def _flock(handle, exclusive: bool, blocking: bool = True) -> bool:
    """Advisory-lock an open segment handle; ``True`` when acquired.

    Writers (bare puts, batched blocks) take the lock shared;
    :meth:`JsonlSegment.compact` takes it exclusive, so a rewrite can
    never orphan a live writer's inode (the writer would keep appending
    to the replaced file and silently lose every subsequent record).
    On platforms without :mod:`fcntl` the lock is a no-op that reports
    success -- same guarantees as before.
    """
    if fcntl is None:
        return True
    flags = fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
    if not blocking:
        flags |= fcntl.LOCK_NB
    try:
        fcntl.flock(handle.fileno(), flags)
        return True
    except OSError:
        return False


def default_store_backend() -> str:
    """Backend for stores whose path does not exist yet
    (``REPRO_STORE_BACKEND`` env, else ``"jsonl"``).

    Raises:
        ValueError: the env var names an unknown backend.
    """
    name = os.environ.get(BACKEND_ENV, "").strip() or "jsonl"
    if name not in STORE_BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV} must be one of {list(STORE_BACKENDS)}, "
            f"got {name!r}"
        )
    return name


def detect_backend(path: pathlib.Path) -> Optional[str]:
    """Infer the backend from what is on disk at *path*.

    A directory (or a ``shards.json`` under it) is a sharded store; an
    existing file is a single-file store; ``None`` when nothing exists
    yet (the caller falls back to :func:`default_store_backend`).  The
    on-disk layout always wins over the env knob, so pointing any tool
    at an existing store never misreads it.
    """
    if (path / SHARD_META).exists() or path.is_dir():
        return "sharded"
    if path.exists():
        return "jsonl"
    return None


class JsonlSegment:
    """One schema-versioned JSON-lines file of store records.

    This is the unit both backends compose: an append-only file of
    ``{"schema", "key", "spec", "result"}`` records with

    * an in-memory newest-record-wins index, loaded lazily;
    * stale-schema records skipped on load (counted, dropped on
      :meth:`compact`);
    * corrupt/torn lines skipped, never fatal;
    * shared-``flock`` appends (bare or through a held batch handle)
      and an exclusive-``flock`` :meth:`compact` that re-reads under
      the lock so concurrent appends survive the rewrite.
    """

    def __init__(
        self, path: pathlib.Path, schema_version: int
    ) -> None:
        self.path = pathlib.Path(path)
        self.schema_version = schema_version
        self._index: Dict[str, dict] = {}
        self._stale_records = 0
        self._loaded = False
        self._batch_handle = None
        self._batch_pending = 0
        self._batch_flush_every = 1

    # ------------------------------------------------------------------
    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated/corrupt line: skip, don't die
                if record.get("schema") != self.schema_version:
                    self._stale_records += 1
                    continue
                key = record.get("key")
                if key:
                    self._index[key] = record

    # ------------------------------------------------------------------
    def _open_locked_append(self):
        """Append handle holding the shared writer lock.

        If a concurrent :meth:`compact` replaced the file between our
        open and the lock acquisition, the handle points at the
        orphaned inode -- writes there would vanish.  Re-open until the
        locked handle and the path agree (bounded: compaction is rare
        and quick).
        """
        for _ in range(5):
            handle = self.path.open("a", encoding="utf-8")
            _flock(handle, exclusive=False)
            if fcntl is None:
                return handle
            try:
                if (os.fstat(handle.fileno()).st_ino
                        == self.path.stat().st_ino):
                    return handle
            except OSError:
                pass
            handle.close()
        return self.path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------
    def get_record(self, digest: str) -> Optional[dict]:
        self._ensure_loaded()
        return self._index.get(digest)

    def put_record(self, digest: str, record: dict) -> None:
        """Append one record (and update the index).

        Outside a :meth:`batched` block the append is open-write-close
        (durable on return); inside one it goes through the held handle
        (flushed per ``flush_every`` puts and at block exit).
        """
        self._ensure_loaded()
        line = json.dumps(record, sort_keys=True) + "\n"
        if self._batch_handle is not None:
            self._batch_handle.write(line)
            self._batch_pending += 1
            if self._batch_pending >= self._batch_flush_every:
                self.flush()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._open_locked_append() as handle:
                handle.write(line)
        self._index[digest] = record

    def flush(self) -> None:
        if self._batch_handle is not None:
            self._batch_handle.flush()
            self._batch_pending = 0

    @contextlib.contextmanager
    def batched(self, flush_every: int = 16) -> Iterator["JsonlSegment"]:
        """Hold one append handle open across many puts (reentrant:
        nested blocks reuse the outer handle)."""
        if self._batch_handle is not None:
            yield self  # nested: the outer batch owns the handle
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._batch_flush_every = max(1, flush_every)
        self._batch_handle = self._open_locked_append()
        try:
            yield self
        finally:
            handle, self._batch_handle = self._batch_handle, None
            self._batch_pending = 0
            handle.close()

    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        self._ensure_loaded()
        return list(self._index)

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._index)

    @property
    def stale_records(self) -> int:
        self._ensure_loaded()
        return self._stale_records

    def size_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Rewrite the file keeping only current-schema records (one per
        key); returns the number of live records.

        The rewrite holds the writer lock exclusively and re-reads the
        file under it, so records appended by another process after
        this segment loaded its index are preserved, and a process
        currently *holding* a writer lock (a sweep mid-append) makes
        compaction refuse rather than orphan its inode.

        Raises:
            RuntimeError: inside a :meth:`batched` block (the rewrite
                would orphan the held append handle and silently drop
                its subsequent writes), or while another process holds
                a writer lock on the file.
        """
        if self._batch_handle is not None:
            raise RuntimeError("compact() is not allowed inside batched()")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as guard:
            if not _flock(guard, exclusive=True, blocking=False):
                raise RuntimeError(
                    f"{self.path} is being written by another process; "
                    "retry when its sweep finishes"
                )
            # re-read under the lock: another process may have appended
            # records since this segment first loaded its index
            self._loaded = False
            self._index.clear()
            self._stale_records = 0
            self._ensure_loaded()
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with tmp.open("w", encoding="utf-8") as handle:
                for record in self._index.values():
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
            tmp.replace(self.path)
        self._stale_records = 0
        return len(self._index)


class SingleFileBackend:
    """The original one-file JSON-lines layout (backend ``"jsonl"``).

    On-disk format is unchanged from before the backend split: any
    pre-existing ``results.jsonl`` opens under this backend untouched.
    """

    name = "jsonl"

    def __init__(self, path: pathlib.Path, schema_version: int) -> None:
        if path.is_dir():
            raise ValueError(
                f"{path} is a directory (a sharded store?); the jsonl "
                "backend needs a file path"
            )
        self._segment = JsonlSegment(path, schema_version)

    # thin delegation: one segment is the whole store
    def get_record(self, digest: str) -> Optional[dict]:
        return self._segment.get_record(digest)

    def put_record(self, digest: str, record: dict) -> None:
        self._segment.put_record(digest, record)

    def flush(self) -> None:
        self._segment.flush()

    def batched(self, flush_every: int = 16):
        return self._segment.batched(flush_every)

    def keys(self) -> List[str]:
        return self._segment.keys()

    def __len__(self) -> int:
        return len(self._segment)

    @property
    def stale_records(self) -> int:
        return self._segment.stale_records

    @property
    def batch_active(self):
        return self._segment._batch_handle

    def compact(self) -> int:
        return self._segment.compact()

    def files(self) -> List[pathlib.Path]:
        return [self._segment.path] if self._segment.path.exists() else []

    def info(self) -> Dict[str, object]:
        return {
            "backend": self.name,
            "records": len(self._segment),
            "stale_records": self._segment.stale_records,
            "size_bytes": self._segment.size_bytes(),
        }


class ShardedBackend:
    """N segment files keyed by run-key digest prefix (``"sharded"``).

    The root directory holds ``shards.json`` (the authoritative shard
    count -- re-routing existing records is never attempted) and one
    ``shard-NN.jsonl`` segment per shard, created lazily on first
    write.  A digest routes to ``int(digest[:8], 16) % shards``, so
    keys spread uniformly and a record's home shard is a pure function
    of its key.

    Per-shard independence is the point: appends lock only their own
    segment (concurrent writers on different shards never contend) and
    :meth:`compact` walks the shards one at a time -- a shard refused
    because another process is mid-append leaves the others compacted.
    """

    name = "sharded"

    def __init__(
        self,
        root: pathlib.Path,
        schema_version: int,
        shards: Optional[int] = None,
    ) -> None:
        if root.is_file():
            raise ValueError(
                f"{root} is a file (a jsonl store?); the sharded backend "
                "needs a directory path"
            )
        self.root = pathlib.Path(root)
        self.schema_version = schema_version
        self.shards = self._resolve_shard_count(shards)
        self._segments: Dict[int, JsonlSegment] = {}
        # batch bookkeeping: when a store-level batch is open, segments
        # enter their own batched() context lazily on first routed put
        self._batch_stack: Optional[contextlib.ExitStack] = None
        self._batch_flush_every = 1
        self._batched_shards: set = set()

    def _resolve_shard_count(self, shards: Optional[int]) -> int:
        meta_path = self.root / SHARD_META
        if meta_path.exists():
            try:
                with meta_path.open("r", encoding="utf-8") as handle:
                    meta = json.load(handle)
                count = int(meta["shards"])
            except (OSError, ValueError, KeyError, TypeError) as error:
                raise ValueError(
                    f"unreadable sharded-store metadata {meta_path}: {error}"
                ) from error
            # the on-disk count is authoritative: records are already
            # routed by it, so a conflicting request must not re-route
            return max(1, min(MAX_SHARDS, count))
        if shards is None:
            env = os.environ.get(SHARDS_ENV, "").strip()
            shards = int(env) if env else DEFAULT_SHARDS
        if not 1 <= shards <= MAX_SHARDS:
            raise ValueError(
                f"shard count must be in [1, {MAX_SHARDS}], got {shards}"
            )
        return shards

    # ------------------------------------------------------------------
    def shard_of(self, digest: str) -> int:
        """The home shard of a run-key digest (leading hex prefix)."""
        try:
            return int(digest[:8], 16) % self.shards
        except ValueError:
            # non-hex keys (tests, exotic callers) still route stably
            return hash(digest) % self.shards

    def shard_path(self, index: int) -> pathlib.Path:
        return self.root / f"shard-{index:02d}.jsonl"

    def _segment(self, index: int) -> JsonlSegment:
        segment = self._segments.get(index)
        if segment is None:
            segment = JsonlSegment(
                self.shard_path(index), self.schema_version
            )
            self._segments[index] = segment
        return segment

    def _all_segments(self) -> List[JsonlSegment]:
        """Every shard segment (instantiating the on-disk ones)."""
        return [self._segment(i) for i in range(self.shards)]

    def _ensure_layout(self) -> None:
        """Create the directory + metadata file on first write."""
        meta_path = self.root / SHARD_META
        if meta_path.exists():
            return
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = meta_path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(
                {"backend": self.name, "shards": self.shards, "version": 1},
                handle,
            )
        tmp.replace(meta_path)

    # ------------------------------------------------------------------
    def get_record(self, digest: str) -> Optional[dict]:
        return self._segment(self.shard_of(digest)).get_record(digest)

    def put_record(self, digest: str, record: dict) -> None:
        self._ensure_layout()
        index = self.shard_of(digest)
        segment = self._segment(index)
        if self._batch_stack is not None and index not in self._batched_shards:
            self._batch_stack.enter_context(
                segment.batched(self._batch_flush_every)
            )
            self._batched_shards.add(index)
        segment.put_record(digest, record)
        _SHARD_PUTS.labels(str(index)).inc()

    def flush(self) -> None:
        for index in self._batched_shards:
            self._segments[index].flush()

    @contextlib.contextmanager
    def batched(self, flush_every: int = 16):
        """Store-level batch: each shard's append handle opens lazily on
        the first put routed to it and closes at block exit (reentrant:
        nested blocks reuse the outer batch)."""
        if self._batch_stack is not None:
            yield self  # nested: the outer batch owns the handles
            return
        self._batch_flush_every = max(1, flush_every)
        with contextlib.ExitStack() as stack:
            self._batch_stack = stack
            try:
                yield self
            finally:
                self._batch_stack = None
                self._batched_shards.clear()

    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        out: List[str] = []
        for segment in self._all_segments():
            out.extend(segment.keys())
        return out

    def __len__(self) -> int:
        return sum(len(segment) for segment in self._all_segments())

    @property
    def stale_records(self) -> int:
        return sum(
            segment.stale_records for segment in self._all_segments()
        )

    @property
    def batch_active(self):
        return self._batch_stack

    def compact(self) -> int:
        """Compact every shard independently; returns total live records.

        Raises:
            RuntimeError: store-level batch open, or a shard refused
                because another process holds its writer lock.  Shards
                compacted before the refusal stay compacted -- per-shard
                independence means a busy shard never blocks the rest
                from being rewritten.
        """
        if self._batch_stack is not None:
            raise RuntimeError("compact() is not allowed inside batched()")
        live = 0
        for index in range(self.shards):
            segment = self._segment(index)
            if not segment.path.exists():
                continue
            try:
                live += segment.compact()
            except RuntimeError as error:
                raise RuntimeError(f"shard {index:02d}: {error}") from error
            _SHARD_COMPACTIONS.labels(str(index)).inc()
        return live

    def files(self) -> List[pathlib.Path]:
        return [
            self.shard_path(i)
            for i in range(self.shards)
            if self.shard_path(i).exists()
        ]

    def info(self) -> Dict[str, object]:
        shard_rows = []
        for index in range(self.shards):
            segment = self._segment(index)
            shard_rows.append({
                "shard": index,
                "path": str(segment.path),
                "records": len(segment),
                "stale_records": segment.stale_records,
                "size_bytes": segment.size_bytes(),
            })
        return {
            "backend": self.name,
            "shards": self.shards,
            "records": sum(row["records"] for row in shard_rows),
            "stale_records": sum(
                row["stale_records"] for row in shard_rows
            ),
            "size_bytes": sum(row["size_bytes"] for row in shard_rows),
            "shard_info": shard_rows,
        }
