"""Serialization between simulation objects and plain JSON-safe dicts.

The experiment engine ships :class:`~repro.gpu.stats.SimulationResult`
objects across process boundaries (pickle) and persists them in the
on-disk result store (JSON lines).  This module owns the JSON side: a
lossless round-trip for results (including the attached
:class:`~repro.energy.model.EnergyReport`) and for
:class:`~repro.core.factory.L1DConfig` values, which form part of every
run's content-hashed identity.

``SCHEMA_VERSION`` tags every store record.  Bump it whenever the shape
of the serialized payload (or the semantics of the simulation that
produced it) changes; the store silently drops records carrying a stale
tag, so old caches can never feed wrong numbers into a figure.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from repro.cache.stats import CacheStats
from repro.core.factory import L1DConfig
from repro.core.fuse_cache import FuseFeatures
from repro.energy.model import EnergyReport
from repro.gpu.stats import LatencyBreakdown, MemorySystemStats, SimulationResult
from repro.telemetry.timeline import timeline_from_payload, timeline_to_payload

__all__ = [
    "SCHEMA_VERSION", "config_from_dict", "config_to_dict",
    "result_from_dict", "result_to_dict",
]

#: Store/record schema version (see module docstring).
#: v2: ``MemorySystemStats.writeback_flits`` split dirty-writeback
#: traffic out of ``request_flits`` (flit accounting fix).
SCHEMA_VERSION = 2


# ----------------------------------------------------------------------
# L1DConfig
# ----------------------------------------------------------------------
def config_to_dict(config: L1DConfig) -> Dict[str, Any]:
    """Flatten an :class:`L1DConfig` (and its ``FuseFeatures``) to a dict."""
    return dataclasses.asdict(config)


def config_from_dict(payload: Dict[str, Any]) -> L1DConfig:
    """Rebuild an :class:`L1DConfig` from :func:`config_to_dict` output."""
    data = dict(payload)
    features = data.get("features")
    if features is not None:
        data["features"] = FuseFeatures(**features)
    return L1DConfig(**data)


# ----------------------------------------------------------------------
# SimulationResult
# ----------------------------------------------------------------------
def _memory_to_dict(memory: MemorySystemStats) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for field in dataclasses.fields(MemorySystemStats):
        value = getattr(memory, field.name)
        if field.name == "latency":
            out["latency"] = {
                "network": value.network, "l2": value.l2, "dram": value.dram,
            }
        else:
            out[field.name] = value
    return out


def _memory_from_dict(payload: Dict[str, Any]) -> MemorySystemStats:
    data = dict(payload)
    latency = data.pop("latency", None) or {}
    return MemorySystemStats(latency=LatencyBreakdown(**latency), **data)


def _energy_to_dict(energy: Optional[EnergyReport]) -> Optional[Dict[str, Any]]:
    if energy is None:
        return None
    return dataclasses.asdict(energy)


def _energy_from_dict(payload) -> Optional[EnergyReport]:
    if payload is None:
        return None
    return EnergyReport(**payload)


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Flatten a :class:`SimulationResult` into a JSON-safe dict.

    Every counter is preserved exactly (all fields are ints/floats), so
    :func:`result_from_dict` reproduces a bit-identical result object.
    The sampled timeline, when a run carried one, rides along under
    ``"timeline"``; the key is **absent** (not null) for runs without
    one, keeping every pre-timeline payload byte-identical.
    """
    payload = {
        "config_name": result.config_name,
        "workload_name": result.workload_name,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "l1d": result.l1d.as_dict(),
        "memory": _memory_to_dict(result.memory),
        "issue_busy_cycles": result.issue_busy_cycles,
        "num_sms": result.num_sms,
        "load_transactions": result.load_transactions,
        "store_transactions": result.store_transactions,
        "retries": result.retries,
        "energy": _energy_to_dict(result.energy),
    }
    if result.timeline is not None:
        payload["timeline"] = timeline_to_payload(result.timeline)
    return payload


def result_from_dict(payload: Dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_dict`."""
    return SimulationResult(
        config_name=payload["config_name"],
        workload_name=payload["workload_name"],
        cycles=payload["cycles"],
        instructions=payload["instructions"],
        l1d=CacheStats(**payload["l1d"]),
        memory=_memory_from_dict(payload["memory"]),
        issue_busy_cycles=payload["issue_busy_cycles"],
        num_sms=payload["num_sms"],
        load_transactions=payload["load_transactions"],
        store_transactions=payload["store_transactions"],
        retries=payload["retries"],
        energy=_energy_from_dict(payload["energy"]),
        timeline=timeline_from_payload(payload.get("timeline")),
    )
