"""Parallel experiment engine with a persistent on-disk result store.

The engine gives every simulation a stable content-hashed identity
(:class:`~repro.engine.spec.RunKey`), executes sweep matrices across a
``multiprocessing`` worker pool with per-run error isolation
(:class:`~repro.engine.engine.ExperimentEngine`), and persists results
to a schema-versioned JSON-lines store
(:class:`~repro.engine.store.ResultStore`) so repeated figure
regeneration costs zero fresh simulations.

Typical use::

    from repro.engine import ExperimentEngine, ResultStore, default_store_path

    store = ResultStore(default_store_path())
    engine = ExperimentEngine(store=store, workers=4)
    table, outcomes = engine.run_matrix(
        ["L1-SRAM", "Dy-FUSE"], ["ATAX", "BICG"], scale="test", num_sms=4
    )
"""

from repro.engine.engine import (
    ExperimentEngine,
    OutcomeCallback,
    ProgressEvent,
    RunOutcome,
    default_workers,
    stderr_progress,
)
from repro.engine.serialize import (
    SCHEMA_VERSION,
    config_from_dict,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.engine.spec import (
    GPU_PROFILES,
    SCALE_PRESETS,
    RunKey,
    RunSpec,
    arena_for_spec,
    execute_spec,
    gpu_profile,
    scale_preset,
    spec_from_dict,
    spec_to_dict,
    trace_key,
)
from repro.engine.store import (
    STORE_BACKENDS,
    ResultStore,
    default_store_path,
    migrate_store,
)

__all__ = [
    "ExperimentEngine",
    "GPU_PROFILES",
    "OutcomeCallback",
    "ProgressEvent",
    "ResultStore",
    "RunKey",
    "RunOutcome",
    "RunSpec",
    "SCALE_PRESETS",
    "SCHEMA_VERSION",
    "STORE_BACKENDS",
    "arena_for_spec",
    "config_from_dict",
    "config_to_dict",
    "default_store_path",
    "default_workers",
    "execute_spec",
    "gpu_profile",
    "migrate_store",
    "result_from_dict",
    "result_to_dict",
    "scale_preset",
    "spec_from_dict",
    "spec_to_dict",
    "stderr_progress",
    "trace_key",
]
