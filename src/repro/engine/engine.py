"""The parallel experiment engine.

:class:`ExperimentEngine` executes arbitrary sweep matrices (lists of
:class:`~repro.engine.spec.RunSpec`) with three layers of reuse:

1. duplicate specs inside one submission are collapsed by content hash;
2. specs already present in the :class:`~repro.engine.store.ResultStore`
   are served from disk (``source="store"``);
3. the remainder runs across a ``multiprocessing`` worker pool with
   chunked dispatch (``source="fresh"``) and is persisted back to the
   store as each run completes.

Failures are isolated per run: a worker that raises reports the
traceback in its :class:`RunOutcome` without killing the sweep.
Progress (completed/total, store hits vs fresh runs, ETA) streams
through an optional callback; :func:`stderr_progress` is a ready-made
terminal reporter.

``workers <= 1`` degrades to an in-process serial loop using the exact
same execution path (:func:`~repro.engine.spec.execute_spec`), so
parallel and serial results are bit-identical by construction.

**Trace arenas**: before any execution, the engine compiles one
:class:`~repro.workloads.arena.PackedTraceArena` per distinct trace
identity (:func:`~repro.engine.spec.trace_key`) among the pending specs
-- *pack before fork*, so a fork-style pool's workers inherit every
arena through copy-on-write page sharing and regenerate nothing.
Pending work is dispatched in trace-key order, so each pool chunk's
runs share one arena.  Spawn-style pools (no inherited memory) get the
arenas spilled to disk in the portable trace-file format
(:func:`~repro.workloads.tracefile.spill_arena`); workers rebuild from
the spill instead of regenerating, once per worker process.  Fresh
results are persisted through one batched store handle
(:meth:`~repro.engine.store.ResultStore.batched`) instead of an
open/append/close per run.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import signal
import tempfile
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.spec import RunSpec, arena_for_spec, execute_spec, trace_key
from repro.engine.store import ResultStore
from repro.gpu.stats import SimulationResult
from repro.telemetry.metrics import REGISTRY
from repro.telemetry.spans import span

__all__ = [
    "ExperimentEngine", "OutcomeCallback", "ProgressCallback",
    "ProgressEvent", "RunOutcome", "WORKERS_ENV", "default_workers",
    "stderr_progress",
]

#: environment knob for the default worker-pool width
WORKERS_ENV = "REPRO_WORKERS"

# sweep-level accounting, exposed as repro_engine_* at GET /metrics.
# Pool workers are separate processes -- their executions are settled
# (and therefore counted) in the parent, so these stay accurate under
# every pool flavour.
_SWEEPS = REGISTRY.counter(
    "repro_engine_sweeps", "run_specs batches executed")
_RUNS = REGISTRY.counter(
    "repro_engine_runs", "Run outcomes settled, by source",
    labelnames=("source",))
_SWEEP_SECONDS = REGISTRY.histogram(
    "repro_engine_sweep_seconds", "Wall-time of run_specs batches")


@dataclass
class RunOutcome:
    """What happened to one submitted spec."""

    spec: RunSpec
    key: str
    result: Optional[SimulationResult] = None
    error: Optional[str] = None
    #: ``"store"`` (disk hit), ``"fresh"`` (simulated now) or ``"error"``
    source: str = "fresh"

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ProgressEvent:
    """One progress tick, emitted after every run settles."""

    completed: int
    total: int
    store_hits: int
    fresh: int
    errors: int
    elapsed_s: float
    eta_s: Optional[float]


ProgressCallback = Callable[[ProgressEvent], None]

#: per-run hook: called with each :class:`RunOutcome` the moment it
#: settles (store hit, fresh result or error) -- the streaming feed the
#: service layer mirrors job progress from
OutcomeCallback = Callable[["RunOutcome"], None]


def stderr_progress(event: ProgressEvent) -> None:
    """Render a one-line live progress ticker on stderr."""
    import sys

    eta = f" eta {event.eta_s:.0f}s" if event.eta_s is not None else ""
    end = "\n" if event.completed == event.total else ""
    sys.stderr.write(
        f"\r[sweep] {event.completed}/{event.total} "
        f"(store {event.store_hits}, fresh {event.fresh}, "
        f"errors {event.errors}){eta}   {end}"
    )
    sys.stderr.flush()


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` env var, else the CPU count."""
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _pool_worker_init():
    """Reset inherited signal state in every pool worker.

    A fork-style worker inherits the parent's Python-level signal
    handlers.  When the parent is the HTTP service, those are asyncio's
    SIGTERM/SIGINT handlers -- which only write to a wakeup fd the
    child never services -- so ``Pool.terminate()``'s SIGTERM would be
    swallowed and the pool join would hang the sweep forever.  Workers
    take the default dispositions instead (and drop the inherited
    wakeup fd); the parent owns all signal policy.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def _run_one(task):
    """Pool worker body: execute one spec, never raise.

    *task* is ``(index, spec)`` or ``(index, spec, arena_dir)``; the
    optional directory points spawn-style workers at the engine's arena
    spill files (fork-style workers inherit the arenas directly).
    """
    index, spec = task[0], task[1]
    arena_dir = task[2] if len(task) > 2 else None
    try:
        return index, execute_spec(spec, arena_dir=arena_dir), None
    except Exception:
        return index, None, traceback.format_exc()


class ExperimentEngine:
    """Executes sweep matrices against the store + worker pool.

    Args:
        store: disk-backed L2 cache; ``None`` disables persistence.
        workers: pool width (default :func:`default_workers`); ``<= 1``
            runs serially in-process.
        progress: default progress callback for every sweep.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        self.store = store
        self.workers = default_workers() if workers is None else max(1, workers)
        self.progress = progress

    # ------------------------------------------------------------------
    def run_specs(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[ProgressCallback] = None,
        on_outcome: Optional[OutcomeCallback] = None,
    ) -> List[RunOutcome]:
        """Execute a batch of specs; returns outcomes aligned with input.

        Duplicate specs share one execution; store hits never touch the
        pool; fresh results are persisted as they arrive.  *on_outcome*
        streams each distinct outcome as it settles (store hits first,
        then fresh results/errors in completion order) -- duplicates of
        one digest fire it once.
        """
        _SWEEPS.inc()
        sweep_started = time.monotonic()
        with span("sweep", cat="job", specs=len(specs)) as attrs:
            outcomes = self._run_specs(specs, progress, on_outcome)
            attrs["outcomes"] = len(outcomes)
        _SWEEP_SECONDS.observe(time.monotonic() - sweep_started)
        return outcomes

    def _run_specs(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[ProgressCallback],
        on_outcome: Optional[OutcomeCallback],
    ) -> List[RunOutcome]:
        progress = progress or self.progress
        specs = list(specs)
        outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
        settled: Dict[str, RunOutcome] = {}
        started = time.monotonic()
        counters = {"store": 0, "fresh": 0, "errors": 0}

        def emit(completed: int, total: int) -> None:
            if progress is None:
                return
            elapsed = time.monotonic() - started
            eta = None
            if counters["fresh"] and completed < total:
                # store hits are ~free; only fresh runs predict the pace
                # of the (all-fresh) remainder
                per_run = elapsed / counters["fresh"]
                eta = per_run * (total - completed)
            progress(ProgressEvent(
                completed=completed, total=total,
                store_hits=counters["store"], fresh=counters["fresh"],
                errors=counters["errors"], elapsed_s=elapsed, eta_s=eta,
            ))

        # -- layer 1+2: dedupe and satisfy from the store ---------------
        pending: List[Tuple[str, RunSpec]] = []
        for index, spec in enumerate(specs):
            digest = spec.key().digest
            if digest in settled:
                outcomes[index] = settled[digest]
                continue
            stored = self.store.get(digest) if self.store is not None else None
            if stored is not None:
                outcome = RunOutcome(
                    spec=spec, key=digest, result=stored, source="store"
                )
                counters["store"] += 1
                _RUNS.labels("store").inc()
                if on_outcome is not None:
                    on_outcome(outcome)
            else:
                outcome = RunOutcome(spec=spec, key=digest)
                pending.append((digest, spec))
            settled[digest] = outcome
            outcomes[index] = outcome

        total = len(settled)
        completed = counters["store"]
        emit(completed, total)

        # -- layer 3: execute the remainder -----------------------------
        def settle(digest: str, result, error) -> None:
            nonlocal completed
            outcome = settled[digest]
            if error is not None:
                outcome.error = error
                outcome.source = "error"
                counters["errors"] += 1
                _RUNS.labels("error").inc()
            else:
                outcome.result = result
                outcome.source = "fresh"
                counters["fresh"] += 1
                _RUNS.labels("fresh").inc()
                if self.store is not None:
                    self.store.put(outcome.spec, result)
            completed += 1
            if on_outcome is not None:
                on_outcome(outcome)
            emit(completed, total)

        if pending:
            # dispatch in trace-identity order: runs sharing a trace sit
            # adjacent, so each pool chunk (and the serial loop's arena
            # LRU) replays one packed arena instead of thrashing between
            # workloads
            pending.sort(key=lambda item: trace_key(item[1]))
            use_pool = self.workers > 1 and len(pending) > 1
            workers = min(self.workers, len(pending))
            chunksize = max(1, len(pending) // (workers * 4))
            arena_dir: Optional[str] = None
            spill_tmp: Optional[tempfile.TemporaryDirectory] = None
            if use_pool:
                arena_dir, spill_tmp = self._prepare_arenas(
                    [spec for _, spec in pending]
                )
            batch = (
                self.store.batched(flush_every=chunksize)
                if self.store is not None else contextlib.nullcontext()
            )
            try:
                with batch:
                    if not use_pool:
                        for digest, spec in pending:
                            _, result, error = _run_one((0, spec))
                            settle(digest, result, error)
                    else:
                        tasks = [
                            (index, spec, arena_dir)
                            for index, (_, spec) in enumerate(pending)
                        ]
                        digests = [digest for digest, _ in pending]
                        with multiprocessing.Pool(
                            processes=workers, initializer=_pool_worker_init
                        ) as pool:
                            for index, result, error in pool.imap_unordered(
                                _run_one, tasks, chunksize=chunksize
                            ):
                                settle(digests[index], result, error)
            finally:
                if spill_tmp is not None:
                    spill_tmp.cleanup()

        return [outcome for outcome in outcomes if outcome is not None]

    # ------------------------------------------------------------------
    def _prepare_arenas(
        self, specs: Sequence[RunSpec]
    ) -> Tuple[Optional[str], Optional[tempfile.TemporaryDirectory]]:
        """Compile the distinct trace arenas before the pool exists.

        Fork-style workers inherit the packed buffers through
        copy-on-write page sharing, so no worker regenerates a trace
        (for sweeps with more distinct trace identities than the arena
        cache retains -- ``ARENA_CACHE_LIMIT`` -- the overflow is left
        for workers to generate on demand).
        Spawn-style workers share no memory: the arenas are additionally
        spilled as portable trace files (``REPRO_ARENA_DIR`` if set,
        else a sweep-lifetime temp directory) and each worker rebuilds
        from the spill once.  Pack/spill failures are swallowed -- the
        affected run will re-raise inside its own error-isolated worker.

        Returns:
            ``(arena_dir, tmp_handle)`` -- the spill directory to hand
            to workers (``None`` for fork pools) and the owning temp-dir
            handle to clean up after the sweep (``None`` when
            ``REPRO_ARENA_DIR`` provided a persistent directory).
        """
        from repro.workloads.arena import ARENA_CACHE_LIMIT

        distinct: Dict[str, RunSpec] = {}
        for spec in specs:
            distinct.setdefault(trace_key(spec), spec)
        if multiprocessing.get_start_method() == "fork":
            # pack only what the LRU cache will actually retain at fork
            # time (dispatch is sorted by trace key, so these are the
            # first-dispatched identities); packing beyond the cap would
            # evict earlier arenas and waste the parent's work -- the
            # overflow regenerates in workers, exactly as pre-arena
            for spec in list(distinct.values())[:ARENA_CACHE_LIMIT]:
                try:
                    arena_for_spec(spec)
                except Exception:
                    pass  # the run itself will report the failure
            return None, None
        # spawn workers share no memory: the spill *file* is the durable
        # handoff, so every distinct identity is packed and spilled even
        # past the in-process cache cap (eviction cannot lose a file)
        arena_dir = os.environ.get("REPRO_ARENA_DIR") or None
        spill_tmp: Optional[tempfile.TemporaryDirectory] = None
        if arena_dir is None:
            spill_tmp = tempfile.TemporaryDirectory(prefix="repro-arenas-")
            arena_dir = spill_tmp.name
        import pathlib

        from repro.workloads.benchmarks import TRACE_PREFIX
        from repro.workloads.tracefile import spill_arena

        for key, spec in distinct.items():
            if spec.workload.startswith(TRACE_PREFIX):
                continue  # the trace file itself is the on-disk form
            target = pathlib.Path(arena_dir) / f"{key}.jsonl"
            if target.exists():
                continue
            try:
                # arena_for_spec already spills into arena_dir when it
                # has to build; only a cache hit leaves the file missing
                arena = arena_for_spec(spec, arena_dir=arena_dir)
                if not target.exists():
                    spill_arena(arena, target, spec)
            except Exception:
                pass
        return arena_dir, spill_tmp

    # ------------------------------------------------------------------
    def run_matrix(
        self,
        configs: Iterable,
        workloads: Iterable[str],
        gpu_profile: str = "fermi",
        scale: str = "bench",
        seed: int = 0,
        num_sms: Optional[int] = None,
        timeline_interval: int = 0,
        backend: str = "",
        progress: Optional[ProgressCallback] = None,
    ) -> Tuple[Dict[str, Dict[str, SimulationResult]], List[RunOutcome]]:
        """Run a configs x workloads grid.

        *configs* entries may be names or :class:`L1DConfig` instances.
        A non-zero *timeline_interval* turns on the in-simulation
        timeline sampler (one row per that many cycles; see
        ``docs/observability.md``) and becomes part of each run's
        identity.  *backend* selects the execution backend
        (``interp``/``fast``, bit-identical; not part of run identity,
        so store hits satisfy either).

        Returns:
            ``({workload: {config_name: result}}, outcomes)`` -- failed
            runs are absent from the nested dict but present (with their
            traceback) in the outcome list.
        """
        configs = list(configs)
        workloads = list(workloads)
        specs = [
            RunSpec.build(
                config, workload, gpu_profile=gpu_profile, scale=scale,
                seed=seed, num_sms=num_sms,
                timeline_interval=timeline_interval, backend=backend,
            )
            for workload in workloads
            for config in configs
        ]
        outcomes = self.run_specs(specs, progress=progress)
        table: Dict[str, Dict[str, SimulationResult]] = {}
        for outcome in outcomes:
            if outcome.result is None:
                continue
            table.setdefault(outcome.spec.workload, {})[
                outcome.spec.l1d.name
            ] = outcome.result
        return table, outcomes
