"""The parallel experiment engine.

:class:`ExperimentEngine` executes arbitrary sweep matrices (lists of
:class:`~repro.engine.spec.RunSpec`) with three layers of reuse:

1. duplicate specs inside one submission are collapsed by content hash;
2. specs already present in the :class:`~repro.engine.store.ResultStore`
   are served from disk (``source="store"``);
3. the remainder runs across a ``multiprocessing`` worker pool with
   chunked dispatch (``source="fresh"``) and is persisted back to the
   store as each run completes.

Failures are isolated per run: a worker that raises reports the
traceback in its :class:`RunOutcome` without killing the sweep.
Progress (completed/total, store hits vs fresh runs, ETA) streams
through an optional callback; :func:`stderr_progress` is a ready-made
terminal reporter.

``workers <= 1`` degrades to an in-process serial loop using the exact
same execution path (:func:`~repro.engine.spec.execute_spec`), so
parallel and serial results are bit-identical by construction.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.spec import RunSpec, execute_spec
from repro.engine.store import ResultStore
from repro.gpu.stats import SimulationResult

__all__ = [
    "ExperimentEngine", "ProgressCallback", "ProgressEvent", "RunOutcome",
    "WORKERS_ENV", "default_workers", "stderr_progress",
]

#: environment knob for the default worker-pool width
WORKERS_ENV = "REPRO_WORKERS"


@dataclass
class RunOutcome:
    """What happened to one submitted spec."""

    spec: RunSpec
    key: str
    result: Optional[SimulationResult] = None
    error: Optional[str] = None
    #: ``"store"`` (disk hit), ``"fresh"`` (simulated now) or ``"error"``
    source: str = "fresh"

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ProgressEvent:
    """One progress tick, emitted after every run settles."""

    completed: int
    total: int
    store_hits: int
    fresh: int
    errors: int
    elapsed_s: float
    eta_s: Optional[float]


ProgressCallback = Callable[[ProgressEvent], None]


def stderr_progress(event: ProgressEvent) -> None:
    """Render a one-line live progress ticker on stderr."""
    import sys

    eta = f" eta {event.eta_s:.0f}s" if event.eta_s is not None else ""
    end = "\n" if event.completed == event.total else ""
    sys.stderr.write(
        f"\r[sweep] {event.completed}/{event.total} "
        f"(store {event.store_hits}, fresh {event.fresh}, "
        f"errors {event.errors}){eta}   {end}"
    )
    sys.stderr.flush()


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` env var, else the CPU count."""
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _run_one(task: Tuple[int, RunSpec]):
    """Pool worker body: execute one spec, never raise."""
    index, spec = task
    try:
        return index, execute_spec(spec), None
    except Exception:
        return index, None, traceback.format_exc()


class ExperimentEngine:
    """Executes sweep matrices against the store + worker pool.

    Args:
        store: disk-backed L2 cache; ``None`` disables persistence.
        workers: pool width (default :func:`default_workers`); ``<= 1``
            runs serially in-process.
        progress: default progress callback for every sweep.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        self.store = store
        self.workers = default_workers() if workers is None else max(1, workers)
        self.progress = progress

    # ------------------------------------------------------------------
    def run_specs(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[ProgressCallback] = None,
    ) -> List[RunOutcome]:
        """Execute a batch of specs; returns outcomes aligned with input.

        Duplicate specs share one execution; store hits never touch the
        pool; fresh results are persisted as they arrive.
        """
        progress = progress or self.progress
        specs = list(specs)
        outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
        settled: Dict[str, RunOutcome] = {}
        started = time.monotonic()
        counters = {"store": 0, "fresh": 0, "errors": 0}

        def emit(completed: int, total: int) -> None:
            if progress is None:
                return
            elapsed = time.monotonic() - started
            eta = None
            if counters["fresh"] and completed < total:
                # store hits are ~free; only fresh runs predict the pace
                # of the (all-fresh) remainder
                per_run = elapsed / counters["fresh"]
                eta = per_run * (total - completed)
            progress(ProgressEvent(
                completed=completed, total=total,
                store_hits=counters["store"], fresh=counters["fresh"],
                errors=counters["errors"], elapsed_s=elapsed, eta_s=eta,
            ))

        # -- layer 1+2: dedupe and satisfy from the store ---------------
        pending: List[Tuple[str, RunSpec]] = []
        for index, spec in enumerate(specs):
            digest = spec.key().digest
            if digest in settled:
                outcomes[index] = settled[digest]
                continue
            stored = self.store.get(digest) if self.store is not None else None
            if stored is not None:
                outcome = RunOutcome(
                    spec=spec, key=digest, result=stored, source="store"
                )
                counters["store"] += 1
            else:
                outcome = RunOutcome(spec=spec, key=digest)
                pending.append((digest, spec))
            settled[digest] = outcome
            outcomes[index] = outcome

        total = len(settled)
        completed = counters["store"]
        emit(completed, total)

        # -- layer 3: execute the remainder -----------------------------
        def settle(digest: str, result, error) -> None:
            nonlocal completed
            outcome = settled[digest]
            if error is not None:
                outcome.error = error
                outcome.source = "error"
                counters["errors"] += 1
            else:
                outcome.result = result
                outcome.source = "fresh"
                counters["fresh"] += 1
                if self.store is not None:
                    self.store.put(outcome.spec, result)
            completed += 1
            emit(completed, total)

        if pending:
            if self.workers <= 1 or len(pending) == 1:
                for digest, spec in pending:
                    index, result, error = _run_one((0, spec))
                    settle(digest, result, error)
            else:
                tasks = list(enumerate(spec for _, spec in pending))
                digests = [digest for digest, _ in pending]
                workers = min(self.workers, len(pending))
                chunksize = max(1, len(pending) // (workers * 4))
                with multiprocessing.Pool(processes=workers) as pool:
                    for index, result, error in pool.imap_unordered(
                        _run_one, tasks, chunksize=chunksize
                    ):
                        settle(digests[index], result, error)

        return [outcome for outcome in outcomes if outcome is not None]

    # ------------------------------------------------------------------
    def run_matrix(
        self,
        configs: Iterable,
        workloads: Iterable[str],
        gpu_profile: str = "fermi",
        scale: str = "bench",
        seed: int = 0,
        num_sms: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> Tuple[Dict[str, Dict[str, SimulationResult]], List[RunOutcome]]:
        """Run a configs x workloads grid.

        *configs* entries may be names or :class:`L1DConfig` instances.

        Returns:
            ``({workload: {config_name: result}}, outcomes)`` -- failed
            runs are absent from the nested dict but present (with their
            traceback) in the outcome list.
        """
        configs = list(configs)
        workloads = list(workloads)
        specs = [
            RunSpec.build(
                config, workload, gpu_profile=gpu_profile, scale=scale,
                seed=seed, num_sms=num_sms,
            )
            for workload in workloads
            for config in configs
        ]
        outcomes = self.run_specs(specs, progress=progress)
        table: Dict[str, Dict[str, SimulationResult]] = {}
        for outcome in outcomes:
            if outcome.result is None:
                continue
            table.setdefault(outcome.spec.workload, {})[
                outcome.spec.l1d.name
            ] = outcome.result
        return table, outcomes
