"""``WritebackSink``: the shared eviction/writeback path.

A line leaving any L1D follows one rule: count the eviction, let the
owning engine score its predictor (dead-write diagnostics for By-NVM,
read-level accuracy for Dy-FUSE), and surface a dirty line's block
address so the simulator forwards the writeback to L2 as
fire-and-forget traffic.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.cache.stats import CacheStats
from repro.cache.tag_array import EvictedLine

__all__ = [
    "WritebackSink",
]


class WritebackSink:
    """Eviction accounting + dirty-writeback emission.

    Args:
        stats: the owning cache's flat counter object.
        leaves_cache: when True the eviction is also counted in
            ``evictions_to_l2`` (the FUSE engines distinguish lines that
            leave the L1D entirely from bank-to-bank migrations).
        scorer: optional per-eviction predictor-scoring hook.
    """

    __slots__ = ("stats", "leaves_cache", "scorer")

    def __init__(
        self,
        stats: CacheStats,
        leaves_cache: bool = False,
        scorer: Optional[Callable[[EvictedLine], None]] = None,
    ) -> None:
        self.stats = stats
        self.leaves_cache = leaves_cache
        self.scorer = scorer

    def evict(self, evicted: Optional[EvictedLine]) -> Tuple[int, ...]:
        """Account one eviction; returns the writeback tuple."""
        if evicted is None:
            return ()
        stats = self.stats
        stats.evictions += 1
        if self.leaves_cache:
            stats.evictions_to_l2 += 1
        if self.scorer is not None:
            self.scorer(evicted)
        if evicted.dirty:
            stats.dirty_writebacks += 1
            return (evicted.block_addr,)
        return ()
