"""``BankPort``: one cache bank as a served resource.

An operation arriving at cycle ``c`` starts at ``max(c, busy_until)``
and holds the bank for its *occupancy*; the data-ready cycle adds the
operation latency (plus any serialized extra cycles, e.g. the
approximated tag search in front of an STT-MRAM operation).  Waiting is
charged to ``stats.bank_wait_cycles`` and, for STT-MRAM banks, also to
``stats.stt_write_stall_cycles`` -- waiting behind long MTJ writes is
exactly the Figure 15 stall the paper attributes pure-NVM slowdowns to.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.stats import CacheStats

__all__ = [
    "BankPort",
]


class BankPort:
    """Busy-until timing plus occupancy/stall/energy accounting.

    Args:
        stats: the owning cache's flat counter object.
        technology: ``"sram"`` or ``"stt"``; selects the wait-stall rule
            and which energy event counters read/write operations bump.
        read_latency / write_latency: cycles from bank start to done.
        read_occupancy: bank busy time per read (1 = fully pipelined).
        write_occupancy: bank busy time per write; STT-MRAM writes hold
            the bank for the whole write (defaults to ``write_latency``).
        count_events: when False the port only does timing; the caller
            owns the ``sram_*``/``stt_*`` event counters (the FUSE STT
            paths count per routing decision, not per bank operation).
    """

    __slots__ = (
        "stats",
        "technology",
        "read_latency",
        "write_latency",
        "read_occupancy",
        "write_occupancy",
        "count_events",
        "busy_until",
        "_is_stt",
    )

    def __init__(
        self,
        stats: CacheStats,
        technology: str,
        read_latency: int = 1,
        write_latency: int = 1,
        read_occupancy: int = 1,
        write_occupancy: Optional[int] = None,
        count_events: bool = True,
    ) -> None:
        if technology not in ("sram", "stt"):
            raise ValueError("technology must be 'sram' or 'stt'")
        self.stats = stats
        self.technology = technology
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.read_occupancy = read_occupancy
        self.write_occupancy = (
            write_latency if write_occupancy is None else write_occupancy
        )
        self.count_events = count_events
        self.busy_until = 0
        self._is_stt = technology == "stt"

    # ------------------------------------------------------------------
    def start(self, cycle: int) -> int:
        """Acquire the bank; returns the start cycle, charging any wait."""
        start = self.busy_until
        if start <= cycle:
            return cycle
        stats = self.stats
        wait = start - cycle
        stats.bank_wait_cycles += wait
        if self._is_stt:
            stats.stt_write_stall_cycles += wait
        return start

    def read(self, cycle: int, extra: int = 0) -> int:
        """One bank read; returns the data-ready cycle.

        ``extra`` cycles (tag-search serialization) delay only the
        data-ready cycle: the bank's occupancy stays ``read_occupancy``
        because tag polling overlaps the next operation's access (the
        same pipelining the tag queue models).  Writes, by contrast,
        hold the bank through their ``extra`` cycles -- see
        :meth:`write`.
        """
        start = self.start(cycle)
        if self.count_events:
            if self._is_stt:
                self.stats.stt_reads += 1
            else:
                self.stats.sram_reads += 1
        self.busy_until = start + self.read_occupancy
        return start + extra + self.read_latency

    def write(self, cycle: int, extra: int = 0) -> int:
        """One bank write; returns the write-complete cycle."""
        start = self.start(cycle)
        if self.count_events:
            if self._is_stt:
                self.stats.stt_writes += 1
            else:
                self.stats.sram_writes += 1
        self.busy_until = start + extra + self.write_occupancy
        return start + extra + self.write_latency

    def bulk(self, cycle: int, count: int, is_write: bool) -> int:
        """Serve *count* back-to-back operations, the k-th arriving at
        ``cycle + k``; returns the last operation's data-ready cycle.

        Closed form of *count* consecutive :meth:`read`/:meth:`write`
        calls (no ``extra`` support): with occupancy ``o`` the k-th
        operation starts at ``start_0 + k*o`` where ``start_0 =
        max(cycle, busy_until)``, so its wait is ``(start_0 - cycle) +
        k*(o - 1)``.  Timing, stall charging and event counting are
        bit-identical to the per-op path -- the fast backend leans on
        that to retire all-hit transaction spans in one step.
        """
        stats = self.stats
        if is_write:
            occupancy = self.write_occupancy
            latency = self.write_latency
        else:
            occupancy = self.read_occupancy
            latency = self.read_latency
        start0 = self.busy_until
        if start0 < cycle:
            start0 = cycle
        wait = count * (start0 - cycle) + (
            (occupancy - 1) * (count * (count - 1) // 2)
        )
        if wait:
            stats.bank_wait_cycles += wait
            if self._is_stt:
                stats.stt_write_stall_cycles += wait
        if self.count_events:
            if self._is_stt:
                if is_write:
                    stats.stt_writes += count
                else:
                    stats.stt_reads += count
            else:
                if is_write:
                    stats.sram_writes += count
                else:
                    stats.sram_reads += count
        self.busy_until = start0 + count * occupancy
        return start0 + (count - 1) * occupancy + latency
