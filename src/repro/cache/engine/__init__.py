"""Composable cache-engine primitives shared by every L1D model.

Historically each L1D engine (``BaseCache``, ``ByNVMCache``,
``OracleCache``, ``FuseCache``) re-implemented three pieces of machinery
with subtly duplicated accounting:

* bank ``busy_until`` timing with occupancy and stall bookkeeping,
* the MSHR miss path (merge secondaries, forward primaries off-chip,
  complete fills), and
* the eviction/writeback path.

This package extracts them as three primitives the cache models compose:

* :class:`~repro.cache.engine.bank.BankPort` -- one served bank
  resource: acquire-at-``max(cycle, busy_until)``, charge wait cycles to
  ``bank_wait_cycles`` (and ``stt_write_stall_cycles`` for STT-MRAM
  banks), count read/write events for the energy model.
* :class:`~repro.cache.engine.misspath.MissPath` -- the check-then-commit
  MSHR discipline: probe, merge-or-reject, allocate primaries, release
  fills, and apply merged secondaries to the filled line's residency
  counters.
* :class:`~repro.cache.engine.writeback.WritebackSink` -- eviction
  accounting plus the dirty-writeback tuple handed back to the simulator.

All primitives write into the single flat
:class:`~repro.cache.stats.CacheStats` counter object of the owning
cache, so composing them is bit-identical to the engines they replaced
(pinned by ``tests/test_golden_parity.py``).
"""

from repro.cache.engine.bank import BankPort
from repro.cache.engine.misspath import MissPath
from repro.cache.engine.writeback import WritebackSink

__all__ = ["BankPort", "MissPath", "WritebackSink"]
