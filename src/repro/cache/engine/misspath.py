"""``MissPath``: the shared MSHR miss discipline.

Every non-blocking L1D in this repository follows the same
check-then-commit sequence on a tag miss:

1. an outstanding miss to the same block either *merges* (secondary
   miss, no new off-chip traffic) or, when the entry is merge-full,
   rejects the access with a reservation failure;
2. a new primary miss needs a free MSHR entry (and whatever
   engine-specific resources -- a reservable way, a destination bank);
3. the off-chip response *releases* the entry, and every merged
   secondary is replayed against the filled line's residency counters.

``MissPath`` owns steps 1 and 3 plus the primary-allocation accounting
of step 2; the engine keeps only its own resource checks.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.interface import AccessOutcome, AccessResult
from repro.cache.mshr import MSHR, MSHREntry
from repro.cache.request import MemoryRequest
from repro.cache.stats import CacheStats

__all__ = [
    "MissPath",
]


class MissPath:
    """MSHR merge + off-chip forward + fill completion."""

    __slots__ = ("mshr", "stats")

    def __init__(self, mshr: MSHR, stats: CacheStats) -> None:
        self.mshr = mshr
        self.stats = stats

    # ------------------------------------------------------------------
    def merge_or_reject(
        self, request: MemoryRequest, block: int, cycle: int
    ) -> Optional[AccessResult]:
        """Resolve the in-flight-miss cases for *block*.

        Returns the final :class:`AccessResult` when the access merged
        into an outstanding entry (``HIT_PENDING``), could not merge or
        could not allocate (``RESERVATION_FAIL`` with the fail counted),
        or ``None`` when this is a fresh primary miss the engine should
        now find resources for.
        """
        mshr = self.mshr
        if mshr.probe(block):
            if not mshr.can_merge(block):
                return self.reject(block, cycle)
            mshr.merge(block, request)
            self.stats.merged_misses += 1
            return AccessResult(AccessOutcome.HIT_PENDING, cycle, (), block)
        if mshr.full():
            return self.reject(block, cycle)
        return None

    def reject(self, block: int, cycle: int) -> AccessResult:
        """Count and report one structural-hazard reservation failure."""
        self.stats.reservation_fails += 1
        return AccessResult(AccessOutcome.RESERVATION_FAIL, cycle, (), block)

    def allocate(
        self,
        block: int,
        request: MemoryRequest,
        destination: str = "sram",
        cycle: int = 0,
    ) -> MSHREntry:
        """Commit a primary miss (resources already checked)."""
        entry = self.mshr.allocate(
            block, request, destination=destination, cycle=cycle
        )
        self.stats.misses += 1
        return entry

    # ------------------------------------------------------------------
    def release(self, block: int) -> MSHREntry:
        """Pop the entry for an arrived fill."""
        return self.mshr.release(block)

    @staticmethod
    def apply_merged(entry: MSHREntry, line) -> None:
        """Replay merged secondaries on the filled line's counters.

        The primary request's read/write nature is applied by the tag
        array's fill itself; secondaries only touch residency counters
        (and dirtiness for stores), exactly like a hit would have.
        """
        for merged in entry.requests[1:]:
            if merged.is_write:
                line.dirty = True
                line.writes_observed += 1
            else:
                line.reads_observed += 1
