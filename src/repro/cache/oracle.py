"""The "Oracle GPU" L1D: an ideal cache with unbounded capacity.

Figure 3 motivates FUSE by comparing the Vanilla GTX480-like L1D against an
"ideal L1D cache that has enough capacity to avoid cache thrashing".  The
oracle still pays cold (compulsory) misses and MSHR constraints -- only
capacity and conflict misses disappear.  Its banks are likewise idealised
(no ``busy_until`` serialisation), so the only shared machinery it needs
is the :class:`~repro.cache.engine.MissPath` MSHR discipline.
"""

from __future__ import annotations

from typing import Set

from repro.cache.engine import MissPath
from repro.cache.interface import (
    AccessOutcome,
    AccessResult,
    FillResult,
    L1DCacheModel,
)
from repro.cache.mshr import MSHR
from repro.cache.request import MemoryRequest

__all__ = [
    "OracleCache",
]


class OracleCache(L1DCacheModel):
    """Infinite-capacity L1D (cold misses only).

    Args:
        read_latency / write_latency: SRAM-like single-cycle timing.
        mshr_entries / mshr_max_merge: the MSHR stays finite so the oracle
            still models realistic miss-level parallelism.
    """

    def __init__(
        self,
        read_latency: int = 1,
        write_latency: int = 1,
        mshr_entries: int = 32,
        mshr_max_merge: int = 8,
        name: str = "Oracle",
    ) -> None:
        super().__init__()
        self.name = name
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.mshr = MSHR(mshr_entries, mshr_max_merge)
        self.miss_path = MissPath(self.mshr, self.stats)
        self._resident: Set[int] = set()

    def _access_impl(self, request: MemoryRequest, cycle: int) -> AccessResult:
        stats = self.stats
        stats.tag_lookups += 1
        block = request.block_addr
        if block in self._resident:
            stats.hits += 1
            if request.is_write:
                stats.write_hits += 1
                stats.sram_writes += 1
                ready = cycle + self.write_latency
            else:
                stats.read_hits += 1
                stats.sram_reads += 1
                ready = cycle + self.read_latency
            return AccessResult(AccessOutcome.HIT, ready, (), block)

        merged = self.miss_path.merge_or_reject(request, block, cycle)
        if merged is not None:
            return merged

        self.miss_path.allocate(block, request, cycle=cycle)
        return AccessResult(AccessOutcome.MISS, cycle, (), block)

    def bulk_hit_retire(
        self,
        txns,
        start: int,
        end: int,
        cycle: int,
        pc: int,
        warp_id: int,
        is_write: bool,
    ):
        """All-hit span fast path: pure set membership (ideal banks mean
        the k-th transaction is simply ready at ``cycle + k + latency``)."""
        resident = self._resident
        for k in range(start, end):
            if txns[k] not in resident:
                return None
        count = end - start
        stats = self.stats
        stats.accesses += count
        stats.tag_lookups += count
        stats.hits += count
        if is_write:
            stats.write_accesses += count
            stats.write_hits += count
            stats.sram_writes += count
            latency = self.write_latency
        else:
            stats.read_accesses += count
            stats.read_hits += count
            stats.sram_reads += count
            latency = self.read_latency
        return cycle + (count - 1) + latency

    def fill(self, block_addr: int, cycle: int) -> FillResult:
        entry = self.miss_path.release(block_addr)
        self._resident.add(block_addr)
        self.stats.fills += 1
        self.stats.sram_writes += 1
        return FillResult(cycle + self.write_latency, list(entry.requests), ())
