"""Factories for the SRAM baseline L1D configurations of Table I.

* ``L1-SRAM``: 32 KB, 64 sets x 4 ways, LRU, 1-cycle reads and writes --
  the normalisation baseline of every figure.
* ``FA-SRAM``: the same 32 KB reorganised as a single 256-way set.  The
  paper treats it as an *unrealistic* upper bound (30.6x area, 28.3x power
  of 4-way, Section III-B), so its timing here is idealised: single-cycle
  tag search regardless of associativity.
* ``L1-NVM``: Figure 3's "STT-MRAM GPU" -- the same area budget spent on
  pure STT-MRAM gives 4x capacity (128 KB) but 5-cycle blocking writes.
"""

from __future__ import annotations

from repro.cache.basecache import BaseCache
from repro.cache.request import BLOCK_SIZE

__all__ = [
    "make_fa_sram_cache", "make_pure_nvm_cache", "make_sram_cache",
]


def make_sram_cache(
    size_kb: int = 32,
    assoc: int = 4,
    mshr_entries: int = 32,
    mshr_max_merge: int = 8,
    name: str = "L1-SRAM",
) -> BaseCache:
    """Set-associative SRAM L1D (Table I ``L1-SRAM`` geometry by default)."""
    num_lines = size_kb * 1024 // BLOCK_SIZE
    if num_lines % assoc:
        raise ValueError(f"{size_kb}KB is not divisible into {assoc}-way sets")
    num_sets = num_lines // assoc
    return BaseCache(
        num_sets=num_sets,
        assoc=assoc,
        read_latency=1,
        write_latency=1,
        replacement="lru",
        mshr_entries=mshr_entries,
        mshr_max_merge=mshr_max_merge,
        technology="sram",
        name=name,
    )


def make_fa_sram_cache(
    size_kb: int = 32,
    mshr_entries: int = 32,
    mshr_max_merge: int = 8,
    name: str = "FA-SRAM",
) -> BaseCache:
    """Fully-associative SRAM L1D (idealised timing, see module docs)."""
    num_lines = size_kb * 1024 // BLOCK_SIZE
    return BaseCache(
        num_sets=1,
        assoc=num_lines,
        read_latency=1,
        write_latency=1,
        replacement="lru",
        mshr_entries=mshr_entries,
        mshr_max_merge=mshr_max_merge,
        technology="sram",
        name=name,
    )


def make_pure_nvm_cache(
    size_kb: int = 128,
    assoc: int = 4,
    read_latency: int = 1,
    write_latency: int = 5,
    mshr_entries: int = 32,
    mshr_max_merge: int = 8,
    name: str = "L1-NVM",
) -> BaseCache:
    """Pure STT-MRAM L1D without bypassing (Figure 3's "STT-MRAM GPU").

    Writes occupy the bank for the full 5-cycle write latency, which is the
    material-level penalty of rotating the MTJ free layer (Section II-B).
    """
    num_lines = size_kb * 1024 // BLOCK_SIZE
    if num_lines % assoc:
        raise ValueError(f"{size_kb}KB is not divisible into {assoc}-way sets")
    num_sets = num_lines // assoc
    return BaseCache(
        num_sets=num_sets,
        assoc=assoc,
        read_latency=read_latency,
        write_latency=write_latency,
        write_occupancy=write_latency,
        replacement="lru",
        mshr_entries=mshr_entries,
        mshr_max_merge=mshr_max_merge,
        technology="stt",
        name=name,
    )
