"""A homogeneous non-blocking cache engine.

``BaseCache`` implements the write-back, write-allocate, MSHR-backed cache
the paper's baselines are built from.  The same engine models

* ``L1-SRAM``  -- 32 KB, 64 sets x 4 ways, 1-cycle reads and writes,
* ``FA-SRAM`` -- 32 KB, 1 set x 256 ways, LRU (idealised full associativity),
* ``L1-NVM``  -- 128 KB pure STT-MRAM, 256 sets x 4 ways, 5-cycle writes
  (Figure 3's "STT-MRAM GPU"),

differing only in geometry and bank timing.  ``By-NVM`` (dead-write bypass)
derives from it in :mod:`repro.cache.nvm_bypass`.

Timing model
------------
The bank is a single served resource: an operation arriving at cycle ``c``
starts at ``max(c, busy_until)`` and holds the bank for its *occupancy*.
Reads are pipelined (occupancy 1); STT-MRAM writes occupy the bank for the
full write latency, which is exactly the write-penalty mechanism the paper
attributes pure-NVM slowdowns to.  Waiting time is recorded in
``stats.bank_wait_cycles`` and, for NVM write occupancy, in
``stats.stt_write_stall_cycles``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cache.interface import (
    AccessOutcome,
    AccessResult,
    FillResult,
    L1DCacheModel,
)
from repro.cache.mshr import MSHR
from repro.cache.request import MemoryRequest
from repro.cache.tag_array import EvictedLine, TagArray


class BaseCache(L1DCacheModel):
    """Set-associative, write-back, write-allocate, non-blocking cache.

    Args:
        num_sets: sets in the tag array (power of two).
        assoc: ways per set.
        read_latency: cycles from bank start to data available.
        write_latency: cycles a write needs; for STT-MRAM this is 5
            (Table I: "1/5-cycle (W)").
        read_occupancy: bank busy time per read (1 = fully pipelined).
        write_occupancy: bank busy time per write; STT-MRAM writes block
            the bank for the whole write (defaults to ``write_latency``).
        replacement: replacement policy name.
        mshr_entries / mshr_max_merge: MSHR geometry.
        technology: ``"sram"`` or ``"stt"``; routes energy event counters.
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        read_latency: int = 1,
        write_latency: int = 1,
        read_occupancy: int = 1,
        write_occupancy: Optional[int] = None,
        replacement: str = "lru",
        mshr_entries: int = 32,
        mshr_max_merge: int = 8,
        technology: str = "sram",
        name: str = "l1d",
    ) -> None:
        super().__init__()
        if technology not in ("sram", "stt"):
            raise ValueError("technology must be 'sram' or 'stt'")
        self.name = name
        self.tags = TagArray(num_sets, assoc, replacement)
        self.mshr = MSHR(mshr_entries, mshr_max_merge)
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.read_occupancy = read_occupancy
        self.write_occupancy = (
            write_latency if write_occupancy is None else write_occupancy
        )
        self.technology = technology
        self._busy_until = 0

    # ------------------------------------------------------------------
    # bank timing helpers
    def _start_op(self, cycle: int) -> int:
        """Cycle at which an op arriving at *cycle* gets the bank."""
        start = max(cycle, self._busy_until)
        wait = start - cycle
        if wait:
            self.stats.bank_wait_cycles += wait
            if self.technology == "stt":
                # waiting behind long NVM writes is the Figure 15 stall
                self.stats.stt_write_stall_cycles += wait
        return start

    def _count_bank_read(self) -> None:
        if self.technology == "sram":
            self.stats.sram_reads += 1
        else:
            self.stats.stt_reads += 1

    def _count_bank_write(self) -> None:
        if self.technology == "sram":
            self.stats.sram_writes += 1
        else:
            self.stats.stt_writes += 1

    # ------------------------------------------------------------------
    def _record_eviction(self, evicted: Optional[EvictedLine]) -> Tuple[int, ...]:
        """Account an eviction; return writeback tuple for dirty lines."""
        if evicted is None:
            return ()
        self.stats.evictions += 1
        self._score_eviction(evicted)
        if evicted.dirty:
            self.stats.dirty_writebacks += 1
            return (evicted.block_addr,)
        return ()

    def _score_eviction(self, evicted: EvictedLine) -> None:
        """Hook for predictor-accuracy scoring (used by By-NVM / FUSE)."""

    # ------------------------------------------------------------------
    def _access_impl(self, request: MemoryRequest, cycle: int) -> AccessResult:
        self.stats.tag_lookups += 1
        is_write = request.is_write
        block = request.block_addr
        set_idx, way = self.tags.lookup(block)

        if way is not None:
            self.stats.hits += 1
            if is_write:
                self.stats.write_hits += 1
            else:
                self.stats.read_hits += 1
            self.tags.touch(set_idx, way, is_write)
            start = self._start_op(cycle)
            if is_write:
                self._count_bank_write()
                ready = start + self.write_latency
                self._busy_until = start + self.write_occupancy
            else:
                self._count_bank_read()
                ready = start + self.read_latency
                self._busy_until = start + self.read_occupancy
            return AccessResult(AccessOutcome.HIT, ready, (), block)

        # -- miss path ---------------------------------------------------
        if self.mshr.probe(block):
            if not self.mshr.can_merge(block):
                self.stats.reservation_fails += 1
                return AccessResult(
                    AccessOutcome.RESERVATION_FAIL, cycle, (), block
                )
            self.mshr.merge(block, request)
            self.stats.merged_misses += 1
            return AccessResult(AccessOutcome.HIT_PENDING, cycle, (), block)

        if self.mshr.full() or not self.tags.can_reserve(block):
            self.stats.reservation_fails += 1
            return AccessResult(AccessOutcome.RESERVATION_FAIL, cycle, (), block)

        _, _, evicted = self.tags.reserve(block, cycle)
        writebacks = self._record_eviction(evicted)
        self.mshr.allocate(block, request, destination=self.technology, cycle=cycle)
        self.stats.misses += 1
        return AccessResult(AccessOutcome.MISS, cycle, writebacks, block)

    # ------------------------------------------------------------------
    def fill(self, block_addr: int, cycle: int) -> FillResult:
        entry = self.mshr.release(block_addr)
        primary_is_write = entry.requests[0].is_write
        self.tags.fill(
            block_addr,
            cycle,
            is_write=primary_is_write,
            fill_pc=entry.requests[0].pc,
        )
        # account residency counters for merged secondaries
        set_idx, way = self.tags.lookup(block_addr)
        line = self.tags.line(set_idx, way)
        for merged in entry.requests[1:]:
            if merged.is_write:
                line.dirty = True
                line.writes_observed += 1
            else:
                line.reads_observed += 1

        start = self._start_op(cycle)
        self._count_bank_write()
        ready = start + self.write_latency
        self._busy_until = start + self.write_occupancy
        self.stats.fills += 1
        return FillResult(ready, list(entry.requests), ())
