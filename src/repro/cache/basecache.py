"""A homogeneous non-blocking cache engine.

``BaseCache`` implements the write-back, write-allocate, MSHR-backed cache
the paper's baselines are built from.  The same engine models

* ``L1-SRAM``  -- 32 KB, 64 sets x 4 ways, 1-cycle reads and writes,
* ``FA-SRAM`` -- 32 KB, 1 set x 256 ways, LRU (idealised full associativity),
* ``L1-NVM``  -- 128 KB pure STT-MRAM, 256 sets x 4 ways, 5-cycle writes
  (Figure 3's "STT-MRAM GPU"),

differing only in geometry and bank timing.  ``By-NVM`` (dead-write bypass)
derives from it in :mod:`repro.cache.nvm_bypass`.

The engine is a thin composition of the shared primitives in
:mod:`repro.cache.engine`: one :class:`~repro.cache.engine.BankPort`
(reads pipelined, STT-MRAM writes occupying the bank for the full write
latency -- exactly the write-penalty mechanism the paper attributes
pure-NVM slowdowns to), one :class:`~repro.cache.engine.MissPath` over
the MSHR, and one :class:`~repro.cache.engine.WritebackSink`.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.engine import BankPort, MissPath, WritebackSink
from repro.cache.interface import (
    AccessOutcome,
    AccessResult,
    FillResult,
    L1DCacheModel,
)
from repro.cache.mshr import MSHR
from repro.cache.request import MemoryRequest
from repro.cache.tag_array import EvictedLine, TagArray

__all__ = [
    "BaseCache",
]


class BaseCache(L1DCacheModel):
    """Set-associative, write-back, write-allocate, non-blocking cache.

    Args:
        num_sets: sets in the tag array (power of two).
        assoc: ways per set.
        read_latency: cycles from bank start to data available.
        write_latency: cycles a write needs; for STT-MRAM this is 5
            (Table I: "1/5-cycle (W)").
        read_occupancy: bank busy time per read (1 = fully pipelined).
        write_occupancy: bank busy time per write; STT-MRAM writes block
            the bank for the whole write (defaults to ``write_latency``).
        replacement: replacement policy name.
        mshr_entries / mshr_max_merge: MSHR geometry.
        technology: ``"sram"`` or ``"stt"``; routes energy event counters.
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        read_latency: int = 1,
        write_latency: int = 1,
        read_occupancy: int = 1,
        write_occupancy: Optional[int] = None,
        replacement: str = "lru",
        mshr_entries: int = 32,
        mshr_max_merge: int = 8,
        technology: str = "sram",
        name: str = "l1d",
    ) -> None:
        super().__init__()
        self.name = name
        self.tags = TagArray(num_sets, assoc, replacement)
        self.mshr = MSHR(mshr_entries, mshr_max_merge)
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.technology = technology
        self.bank = BankPort(
            self.stats,
            technology,
            read_latency=read_latency,
            write_latency=write_latency,
            read_occupancy=read_occupancy,
            write_occupancy=write_occupancy,
        )
        self.miss_path = MissPath(self.mshr, self.stats)
        self.writeback = WritebackSink(self.stats, scorer=self._score_eviction)

    # ------------------------------------------------------------------
    def _score_eviction(self, evicted: EvictedLine) -> None:
        """Hook for predictor-accuracy scoring (used by By-NVM / FUSE)."""

    # ------------------------------------------------------------------
    def _access_impl(self, request: MemoryRequest, cycle: int) -> AccessResult:
        stats = self.stats
        stats.tag_lookups += 1
        is_write = request.is_write
        block = request.block_addr
        set_idx, way = self.tags.lookup(block)

        if way is not None:
            stats.hits += 1
            self.tags.touch(set_idx, way, is_write)
            if is_write:
                stats.write_hits += 1
                ready = self.bank.write(cycle)
            else:
                stats.read_hits += 1
                ready = self.bank.read(cycle)
            return AccessResult(AccessOutcome.HIT, ready, (), block)

        # -- miss path ---------------------------------------------------
        merged = self.miss_path.merge_or_reject(request, block, cycle)
        if merged is not None:
            return merged
        if not self.tags.can_reserve(block):
            return self.miss_path.reject(block, cycle)

        _, _, evicted = self.tags.reserve(block, cycle)
        writebacks = self.writeback.evict(evicted)
        self.miss_path.allocate(
            block, request, destination=self.technology, cycle=cycle
        )
        return AccessResult(AccessOutcome.MISS, cycle, writebacks, block)

    # ------------------------------------------------------------------
    def bulk_hit_retire(
        self,
        txns,
        start: int,
        end: int,
        cycle: int,
        pc: int,
        warp_id: int,
        is_write: bool,
    ):
        """All-hit span fast path (see :class:`~repro.cache.interface.
        L1DCacheModel`): every block must be valid and unreserved.

        A resident block is always a plain hit here -- the hit path
        never writes back, migrates or rejects -- so residency of the
        whole span is the complete eligibility condition.
        """
        index = self.tags._index
        entries = []
        append = entries.append
        for k in range(start, end):
            entry = index.get(txns[k])
            if entry is None:
                return None
            append(entry)
        count = end - start
        stats = self.stats
        stats.accesses += count
        stats.tag_lookups += count
        stats.hits += count
        if is_write:
            stats.write_accesses += count
            stats.write_hits += count
        else:
            stats.read_accesses += count
            stats.read_hits += count
        touch = self.tags.touch
        for set_idx, way in entries:
            touch(set_idx, way, is_write)
        self._observe_bulk(txns, start, end, pc, warp_id, is_write)
        return self.bank.bulk(cycle, count, is_write)

    def _observe_bulk(
        self, txns, start: int, end: int, pc: int, warp_id: int,
        is_write: bool,
    ) -> None:
        """Per-transaction :meth:`_observe` replay for the bulk path
        (overridden by predictor-carrying models)."""

    # ------------------------------------------------------------------
    def fill(self, block_addr: int, cycle: int) -> FillResult:
        entry = self.miss_path.release(block_addr)
        primary = entry.requests[0]
        set_idx, way = self.tags.fill(
            block_addr,
            cycle,
            is_write=primary.is_write,
            fill_pc=primary.pc,
        )
        # account residency counters for merged secondaries
        MissPath.apply_merged(entry, self.tags.line(set_idx, way))

        ready = self.bank.write(cycle)
        self.stats.fills += 1
        return FillResult(ready, list(entry.requests), ())
