"""Statistics collected by every cache model.

A single flat counter object is shared by all cache variants so that the
energy model (:mod:`repro.energy.model`) and the experiment harness can
consume any cache's counters uniformly.  Counters that do not apply to a
given variant simply stay at zero (e.g. ``tag_queue_flushes`` for a pure
SRAM cache).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = [
    "CacheStats",
]


@dataclass(slots=True)
class CacheStats:
    """Flat event counters for one cache instance.

    All fields are integers and the object supports ``+`` so per-SM private
    cache statistics can be summed into machine-wide totals.
    """

    # -- reference stream ---------------------------------------------------
    accesses: int = 0
    read_accesses: int = 0
    write_accesses: int = 0

    hits: int = 0
    read_hits: int = 0
    write_hits: int = 0

    misses: int = 0            # primary misses (MSHR allocated)
    merged_misses: int = 0     # secondary misses merged into an MSHR entry
    bypasses: int = 0          # requests forwarded to L2 without allocation
    reservation_fails: int = 0

    fills: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    # -- bank-level events used by the energy model -------------------------
    sram_reads: int = 0
    sram_writes: int = 0
    stt_reads: int = 0
    stt_writes: int = 0
    tag_lookups: int = 0

    # -- FUSE-specific events ------------------------------------------------
    sram_hits: int = 0
    stt_hits: int = 0
    swap_buffer_hits: int = 0
    migrations_stt_to_sram: int = 0
    migrations_sram_to_stt: int = 0
    evictions_to_l2: int = 0
    tag_queue_flushes: int = 0
    tag_queue_full_events: int = 0
    swap_buffer_full_events: int = 0

    # -- stall accounting (Figure 15) ----------------------------------------
    stt_write_stall_cycles: int = 0
    tag_search_stall_cycles: int = 0
    bank_wait_cycles: int = 0

    # -- associativity approximation (Figures 7 and 20) ----------------------
    cbf_tests: int = 0
    cbf_updates: int = 0
    cbf_false_positives: int = 0
    tag_search_iterations: int = 0
    tag_searches: int = 0

    # -- read-level predictor accuracy (Figure 16) ----------------------------
    pred_true: int = 0
    pred_false: int = 0
    pred_neutral: int = 0

    # ------------------------------------------------------------------
    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (primary + merged + bypassed)."""
        if self.accesses == 0:
            return 0.0
        return (self.misses + self.merged_misses + self.bypasses) / self.accesses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from the cache."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def bypass_ratio(self) -> float:
        """Fraction of misses that bypassed the cache (By-NVM dead writes)."""
        total_missing = self.misses + self.merged_misses + self.bypasses
        if total_missing == 0:
            return 0.0
        return self.bypasses / total_missing

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of scored predictions that were correct (Figure 16)."""
        scored = self.pred_true + self.pred_false
        if scored == 0:
            return 0.0
        return self.pred_true / scored

    # ------------------------------------------------------------------
    def __add__(self, other: "CacheStats") -> "CacheStats":
        if not isinstance(other, CacheStats):
            return NotImplemented
        merged = CacheStats()
        for field in dataclasses.fields(CacheStats):
            setattr(
                merged,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return merged

    def as_dict(self) -> dict:
        """Return a plain ``dict`` of all counters (for reports and tests)."""
        return dataclasses.asdict(self)
