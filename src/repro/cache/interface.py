"""The L1D cache protocol shared by every cache model.

The GPU simulator drives any L1D through two calls:

* :meth:`L1DCacheModel.access` -- a coalesced transaction arrives.  The
  result tells the simulator whether the data is available (``HIT`` with a
  ``ready_cycle``), whether the request went off-chip (``MISS`` /
  ``MISS_BYPASS``), was merged into an outstanding miss (``HIT_PENDING``),
  or whether a structural hazard forces a retry (``RESERVATION_FAIL``).
* :meth:`L1DCacheModel.fill` -- the off-chip response for a block arrived.
  The result lists every merged request that is now complete, so the SM can
  unblock the owning warps.

Dirty evictions surface as ``writebacks`` on either call; the simulator
forwards them to the memory subsystem as fire-and-forget traffic.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.cache.request import MemoryRequest
from repro.cache.stats import CacheStats

__all__ = [
    "AccessOutcome", "AccessResult", "FillResult", "L1DCacheModel",
    "RETRY_INTERVAL",
]


#: Cycles the LSU waits before retrying after a RESERVATION_FAIL.  Shared
#: between the SM model (which schedules the retry) and cache engines
#: (which charge it as stall time when a structural hazard rejects an
#: access), so stall accounting and actual retry timing stay consistent.
RETRY_INTERVAL = 4


class AccessOutcome(enum.Enum):
    """Result category of a single L1D access."""

    HIT = "hit"
    HIT_PENDING = "hit_pending"      # merged into an in-flight MSHR entry
    MISS = "miss"                    # primary miss, forwarded off-chip
    MISS_BYPASS = "miss_bypass"      # forwarded off-chip, no allocation
    RESERVATION_FAIL = "reservation_fail"


@dataclass(slots=True)
class AccessResult:
    """Outcome of :meth:`L1DCacheModel.access`.

    Attributes:
        outcome: what happened (see :class:`AccessOutcome`).
        ready_cycle: for ``HIT``, the cycle the data is available; for the
            store-hit case this is when the write completes in the bank.
        writebacks: dirty block addresses evicted by this access that must
            be written back to L2.
        block_addr: the block this access targeted (convenience).
    """

    outcome: AccessOutcome
    ready_cycle: int = 0
    writebacks: Tuple[int, ...] = ()
    block_addr: int = -1

    @property
    def is_hit(self) -> bool:
        return self.outcome is AccessOutcome.HIT


@dataclass(slots=True)
class FillResult:
    """Outcome of :meth:`L1DCacheModel.fill`.

    Attributes:
        ready_cycle: cycle at which the fill data became usable by warps.
        completed: the requests (primary + merged) satisfied by this fill.
        writebacks: dirty evictions triggered by installing the fill.
    """

    ready_cycle: int
    completed: List[MemoryRequest] = field(default_factory=list)
    writebacks: Tuple[int, ...] = ()


class L1DCacheModel(abc.ABC):
    """Abstract base class for all L1D cache models.

    Subclasses implement :meth:`_access_impl`; the public :meth:`access`
    wrapper owns the access/read/write counters and the predictor-training
    hook so that **rejected attempts are not double-counted**: an LSU
    retries a ``RESERVATION_FAIL`` every few cycles, and counting each
    attempt would inflate APKI and mistrain samplers with phantom reuse.
    """

    #: short configuration name (e.g. ``"Dy-FUSE"``), set by factories
    name: str = "l1d"

    def __init__(self) -> None:
        self.stats = CacheStats()

    def access(self, request: MemoryRequest, cycle: int) -> AccessResult:
        """Present one coalesced transaction to the cache at *cycle*."""
        result = self._access_impl(request, cycle)
        if result.outcome is not AccessOutcome.RESERVATION_FAIL:
            self.stats.accesses += 1
            if request.is_write:
                self.stats.write_accesses += 1
            else:
                self.stats.read_accesses += 1
            self._observe(request)
        return result

    @abc.abstractmethod
    def _access_impl(self, request: MemoryRequest, cycle: int) -> AccessResult:
        """Cache-specific access logic (see :meth:`access`)."""

    def _observe(self, request: MemoryRequest) -> None:
        """Predictor-training hook, called once per accepted access."""

    def bulk_hit_retire(
        self,
        txns,
        start: int,
        end: int,
        cycle: int,
        pc: int,
        warp_id: int,
        is_write: bool,
    ):
        """Fast-backend entry point: retire an all-hit transaction span.

        ``txns[start:end]`` are block addresses presented one per cycle
        from *cycle* (transaction ``k`` arrives at ``cycle + k``), all
        for one op issued by (*pc*, *warp_id*).  When the model can
        prove every transaction would be a plain ``HIT`` -- no
        writebacks, no migrations, no structural hazards, no state the
        event wheel would need to see -- it applies the exact counter,
        bank-timing, replacement and predictor-training mutations the
        per-transaction :meth:`access` path would, in closed form, and
        returns the **last** transaction's data-ready cycle.

        Returning ``None`` (the default, and mandatory before mutating
        anything) hands the span back to the interpreter; correctness
        never depends on this method succeeding.  Implementations are
        pinned bit-identical to the interpreter by the golden-parity
        suite (``tests/test_golden_parity.py``).
        """
        return None

    @abc.abstractmethod
    def fill(self, block_addr: int, cycle: int) -> FillResult:
        """Deliver the off-chip response for *block_addr* at *cycle*."""

    def flush_metadata(self) -> None:
        """Hook for end-of-run bookkeeping (e.g. scoring still-resident
        predictor decisions).  Default: nothing."""

    def mshr_occupancy(self) -> int:
        """In-flight primary misses right now (timeline sampling hook).

        The default reads the conventional ``mshr`` attribute every
        bundled model exposes; models without one report zero.
        """
        mshr = getattr(self, "mshr", None)
        return len(mshr) if mshr is not None else 0
