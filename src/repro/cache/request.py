"""Memory request primitives shared by every cache and memory model.

The simulated machine uses 128-byte cache blocks end to end (L1D line, L2
line, DRAM burst and interconnect payload), matching the GPGPU-Sim
configuration the paper uses: a warp of 32 threads each touching 4 bytes
produces one fully-coalesced 128-byte transaction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "AccessType", "BLOCK_SHIFT", "BLOCK_SIZE", "MemoryRequest",
    "block_address",
]

#: Cache block size in bytes (fixed across the whole memory hierarchy).
BLOCK_SIZE = 128

#: log2(BLOCK_SIZE); used to convert byte addresses to block addresses.
BLOCK_SHIFT = 7


class AccessType(enum.Enum):
    """Kind of memory access issued by a warp."""

    LOAD = "load"
    STORE = "store"


def block_address(byte_address: int) -> int:
    """Return the block-granular address for *byte_address*.

    >>> block_address(0)
    0
    >>> block_address(127)
    0
    >>> block_address(128)
    1
    """
    return byte_address >> BLOCK_SHIFT


_next_request_id = 0


def _allocate_request_id() -> int:
    global _next_request_id
    _next_request_id += 1
    return _next_request_id


@dataclass(slots=True)
class MemoryRequest:
    """A single block-granular L1D transaction.

    One warp memory instruction expands (through the coalescer) into one or
    more ``MemoryRequest`` objects, each targeting a distinct 128-byte block.

    Attributes:
        address: byte address of the access (block-aligned by the coalescer).
        access_type: ``LOAD`` or ``STORE``.
        pc: program counter of the issuing static instruction.  The
            read-level predictor is indexed by a signature derived from it.
        sm_id: streaming multiprocessor that issued the request.
        warp_id: warp (within the SM) that issued the request.
        issue_cycle: core cycle at which the request reached the L1D.
        request_id: identity assigned at object construction (monotonic
            across constructions).  The SM's LSU pools and reuses request
            objects (:mod:`repro.gpu.sm`), so a recycled request keeps
            its original id: treat it as an object identity for
            debugging, not as a per-transaction sequence number.
    """

    address: int
    access_type: AccessType
    pc: int = 0
    sm_id: int = 0
    warp_id: int = 0
    issue_cycle: int = 0
    request_id: int = field(default_factory=_allocate_request_id)

    @property
    def block_addr(self) -> int:
        """Block-granular address of this request."""
        return self.address >> BLOCK_SHIFT

    @property
    def is_write(self) -> bool:
        """True when this request is a store."""
        return self.access_type is AccessType.STORE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ST" if self.is_write else "LD"
        return (
            f"MemoryRequest({kind} 0x{self.address:x} pc=0x{self.pc:x} "
            f"sm={self.sm_id} w={self.warp_id} @{self.issue_cycle})"
        )
