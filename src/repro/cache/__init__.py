"""Generic cache substrate: tag arrays, replacement policies, MSHRs and the
baseline L1D cache models the paper evaluates FUSE against.

The modules in this package know nothing about STT-MRAM heterogeneity; they
provide the building blocks (``TagArray``, ``MSHR``, ``BaseCache``) that both
the baseline caches (``L1-SRAM``, ``FA-SRAM``, ``L1-NVM``, ``By-NVM``,
``Oracle``) and the FUSE engine in :mod:`repro.core` are assembled from.
"""

from repro.cache.interface import (
    AccessOutcome,
    AccessResult,
    FillResult,
    L1DCacheModel,
)
from repro.cache.mshr import MSHR, MSHREntry
from repro.cache.basecache import BaseCache
from repro.cache.nvm_bypass import ByNVMCache, DeadWritePredictor
from repro.cache.oracle import OracleCache
from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PseudoLRUPolicy,
    RandomPolicy,
    make_replacement_policy,
)
from repro.cache.request import AccessType, MemoryRequest, block_address
from repro.cache.sram_cache import make_fa_sram_cache, make_sram_cache
from repro.cache.stats import CacheStats
from repro.cache.tag_array import CacheLine, TagArray

__all__ = [
    "AccessOutcome",
    "AccessResult",
    "AccessType",
    "BaseCache",
    "ByNVMCache",
    "CacheLine",
    "CacheStats",
    "DeadWritePredictor",
    "FIFOPolicy",
    "FillResult",
    "L1DCacheModel",
    "LRUPolicy",
    "MSHR",
    "MSHREntry",
    "MemoryRequest",
    "OracleCache",
    "PseudoLRUPolicy",
    "RandomPolicy",
    "TagArray",
    "block_address",
    "make_fa_sram_cache",
    "make_replacement_policy",
    "make_sram_cache",
]
