"""Set-associative tag array with reservation support.

The tag array is the bookkeeping heart of every cache model in this
repository.  It follows GPGPU-Sim's allocate-on-miss discipline: a miss
*reserves* a line (so the set cannot over-commit while the fill is in
flight) and the arriving fill completes the reservation.

Lines additionally record the issuing PC and per-residency read/write
counts.  Those feed two paper mechanisms:

* the read-level predictor's accuracy scoring (Figure 16) compares the
  level predicted at fill time against the writes actually observed while
  the line was resident, and
* the read-level analysis of Figure 6 is validated against the same
  counters in integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Iterator, List, Optional, Tuple

from repro.cache.replacement import ReplacementPolicy, make_replacement_policy

__all__ = [
    "CacheLine", "EvictedLine", "TagArray",
]


@dataclass(slots=True)
class CacheLine:
    """State of one cache line (one way of one set)."""

    tag: int = -1
    valid: bool = False
    dirty: bool = False
    reserved: bool = False
    #: block address stored, kept for convenience (tag encodes it already)
    block_addr: int = -1
    #: PC of the request that allocated the line (predictor bookkeeping)
    fill_pc: int = 0
    #: read-level predicted at fill time, scored on eviction (Figure 16)
    predicted_level: Optional[object] = None
    #: stores observed while resident (excludes the fill itself)
    writes_observed: int = 0
    #: loads observed while resident
    reads_observed: int = 0
    fill_cycle: int = 0

    def reset(self) -> None:
        """Return the line to the invalid state."""
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.reserved = False
        self.block_addr = -1
        self.fill_pc = 0
        self.predicted_level = None
        self.writes_observed = 0
        self.reads_observed = 0
        self.fill_cycle = 0


@dataclass(slots=True)
class EvictedLine:
    """Snapshot of a line pushed out by :meth:`TagArray.reserve`."""

    block_addr: int
    dirty: bool
    fill_pc: int
    predicted_level: Optional[object]
    writes_observed: int
    reads_observed: int


class TagArray:
    """A ``num_sets`` x ``assoc`` tag array with pluggable replacement.

    A fully-associative array is simply ``num_sets=1`` with a large
    associativity, which is exactly how the paper's FA-FUSE configures the
    STT-MRAM bank (1 set x 512 ways, Table I).
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        replacement: str = "lru",
    ) -> None:
        if num_sets < 1 or assoc < 1:
            raise ValueError("num_sets and assoc must be >= 1")
        if num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a power of two")
        self.num_sets = num_sets
        self.assoc = assoc
        self.policy: ReplacementPolicy = make_replacement_policy(
            replacement, num_sets, assoc
        )
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(assoc)] for _ in range(num_sets)
        ]
        self._set_mask = num_sets - 1
        #: valid-block index: block_addr -> (set_idx, way); keeps lookups
        #: O(1) even for the 512-way fully-associative STT organisation
        self._index: dict = {}
        #: pending reservations: block_addr -> (set_idx, way); lets fills
        #: complete without scanning the set
        self._reserved_index: dict = {}
        #: per-set way counts keeping the reserve path off O(assoc) scans
        #: in the steady state (set full, no reservation pending)
        self._free_count: List[int] = [assoc] * num_sets
        self._reserved_count: List[int] = [0] * num_sets
        #: per-set min-heaps of free (invalid, unreserved) way indices:
        #: popping the minimum is identical to scanning the set for the
        #: first free way, without the O(assoc) walk that dominated the
        #: 512-way STT bank under migration churn (invalidate keeps
        #: punching free ways into the middle of the set)
        self._free_ways: List[List[int]] = [
            list(range(assoc)) for _ in range(num_sets)
        ]

    # ------------------------------------------------------------------
    @property
    def num_lines(self) -> int:
        return self.num_sets * self.assoc

    def set_index(self, block_addr: int) -> int:
        """Set index for a block address (low-order block bits)."""
        return block_addr & self._set_mask

    def line(self, set_idx: int, way: int) -> CacheLine:
        """Direct line access (used by cache engines and tests)."""
        return self._sets[set_idx][way]

    def iter_valid_lines(self) -> Iterator[CacheLine]:
        """Yield every valid (non-reserved) line."""
        for ways in self._sets:
            for line in ways:
                if line.valid:
                    yield line

    # ------------------------------------------------------------------
    def lookup(self, block_addr: int) -> Tuple[int, Optional[int]]:
        """Return ``(set_idx, way)``; way is None on miss.

        Only valid lines match; reserved (in-flight) lines do not count as
        hits -- the MSHR handles those as merged misses.
        """
        entry = self._index.get(block_addr)
        if entry is not None:
            return entry
        return self.set_index(block_addr), None

    def probe_reserved(self, block_addr: int) -> bool:
        """True if a reservation for *block_addr* is pending in its set."""
        return block_addr in self._reserved_index

    def touch(self, set_idx: int, way: int, is_write: bool) -> None:
        """Record a hit for replacement state and residency counters."""
        line = self._sets[set_idx][way]
        self.policy.on_access(set_idx, way)
        if is_write:
            line.dirty = True
            line.writes_observed += 1
        else:
            line.reads_observed += 1

    # ------------------------------------------------------------------
    def can_reserve(self, block_addr: int) -> bool:
        """True when the set has at least one non-reserved way."""
        return self._reserved_count[self.set_index(block_addr)] < self.assoc

    def peek_victim(self, block_addr: int) -> Tuple[bool, Optional[CacheLine]]:
        """Preview what :meth:`reserve` would do, without mutating.

        Returns ``(can_reserve, victim_line)``: ``victim_line`` is the
        valid line that would be displaced, or None when a free way exists
        (or when reservation is impossible).  Deterministic policies (LRU,
        FIFO, PLRU) guarantee the subsequent :meth:`reserve` picks the same
        victim; ``RandomPolicy`` does not (its RNG advances per call), so
        check-then-commit cache engines should avoid it.
        """
        set_idx = self.set_index(block_addr)
        if self._free_count[set_idx] > 0:
            return True, None
        ways = self._sets[set_idx]
        if self._reserved_count[set_idx] == 0:
            # steady state: set full, nothing in flight -> every way is a
            # candidate and the policy can answer without a set scan
            return True, ways[self.policy.select_victim_all(set_idx)]
        victim_way = self.policy.select_victim_scan(set_idx, ways)
        if victim_way is None:
            return False, None
        return True, ways[victim_way]

    def reserve(
        self, block_addr: int, cycle: int = 0
    ) -> Tuple[int, int, Optional[EvictedLine]]:
        """Reserve a way for an in-flight fill of *block_addr*.

        Selects a victim among non-reserved ways (invalid ways first), marks
        the chosen way reserved and returns ``(set_idx, way, evicted)``.
        ``evicted`` describes the valid line that was displaced, or None.

        Raises:
            RuntimeError: when every way in the set is already reserved.
                Callers must check :meth:`can_reserve` first; running out of
                ways is the "cannot obtain a free cache line" structural
                hazard that surfaces as a reservation failure.
        """
        set_idx = self.set_index(block_addr)
        ways = self._sets[set_idx]

        victim_way: Optional[int] = None
        if self._free_count[set_idx] > 0:
            # lowest free way index, same choice the old first-free scan
            # made, in O(log assoc)
            victim_way = heappop(self._free_ways[set_idx])
        if victim_way is None:
            if self._reserved_count[set_idx] == 0:
                victim_way = self.policy.select_victim_all(set_idx)
            else:
                victim_way = self.policy.select_victim_scan(set_idx, ways)
                if victim_way is None:
                    raise RuntimeError(
                        f"reserve() with all ways reserved in set {set_idx}"
                    )

        line = ways[victim_way]
        evicted: Optional[EvictedLine] = None
        if line.valid:
            evicted = EvictedLine(
                block_addr=line.block_addr,
                dirty=line.dirty,
                fill_pc=line.fill_pc,
                predicted_level=line.predicted_level,
                writes_observed=line.writes_observed,
                reads_observed=line.reads_observed,
            )
            self._index.pop(line.block_addr, None)
        else:
            self._free_count[set_idx] -= 1
        line.reset()
        line.reserved = True
        line.block_addr = block_addr
        line.tag = block_addr >> 0
        line.fill_cycle = cycle
        self._reserved_count[set_idx] += 1
        self._reserved_index[block_addr] = (set_idx, victim_way)
        self.policy.on_reserve(set_idx, victim_way)
        return set_idx, victim_way, evicted

    def _complete_reservation(
        self,
        block_addr: int,
        set_idx: int,
        way: int,
        cycle: int,
        dirty: bool,
        fill_pc: int,
        predicted_level: Optional[object],
    ) -> None:
        line = self._sets[set_idx][way]
        line.reserved = False
        line.valid = True
        line.dirty = dirty
        line.fill_pc = fill_pc
        line.predicted_level = predicted_level
        line.fill_cycle = cycle
        self._reserved_count[set_idx] -= 1
        del self._reserved_index[block_addr]
        self.policy.on_fill(set_idx, way)
        self._index[block_addr] = (set_idx, way)

    def fill(
        self,
        block_addr: int,
        cycle: int = 0,
        is_write: bool = False,
        fill_pc: int = 0,
        predicted_level: Optional[object] = None,
    ) -> Tuple[int, int]:
        """Complete the reservation for *block_addr*.

        Returns ``(set_idx, way)`` of the now-valid line.

        Raises:
            RuntimeError: when no reservation exists (fills must always have
                been preceded by a reserve; anything else is an engine bug).
        """
        entry = self._reserved_index.get(block_addr)
        if entry is None:
            raise RuntimeError(
                f"fill() without reservation for 0x{block_addr:x}"
            )
        set_idx, way = entry
        self._complete_reservation(
            block_addr, set_idx, way, cycle, is_write, fill_pc,
            predicted_level,
        )
        return set_idx, way

    def install(
        self,
        block_addr: int,
        cycle: int = 0,
        dirty: bool = False,
        fill_pc: int = 0,
        predicted_level: Optional[object] = None,
    ) -> Tuple[int, int, Optional[EvictedLine]]:
        """Reserve-and-fill in one step (used for migrations between banks,
        where the data is already on chip and no fill response is pending).
        """
        set_idx, way, evicted = self.reserve(block_addr, cycle)
        self._complete_reservation(
            block_addr, set_idx, way, cycle, dirty, fill_pc, predicted_level,
        )
        return set_idx, way, evicted

    def invalidate(self, block_addr: int) -> Optional[EvictedLine]:
        """Invalidate *block_addr* if present; return its snapshot."""
        set_idx, way = self.lookup(block_addr)
        if way is None:
            return None
        line = self._sets[set_idx][way]
        snapshot = EvictedLine(
            block_addr=line.block_addr,
            dirty=line.dirty,
            fill_pc=line.fill_pc,
            predicted_level=line.predicted_level,
            writes_observed=line.writes_observed,
            reads_observed=line.reads_observed,
        )
        line.reset()
        self._index.pop(block_addr, None)
        self._free_count[set_idx] += 1
        heappush(self._free_ways[set_idx], way)
        return snapshot

    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        return sum(1 for _ in self.iter_valid_lines())
