"""Cache replacement policies.

The paper uses LRU for the SRAM bank and set-associative baselines, and FIFO
for the fully-associative STT-MRAM bank because "the circuit complexity of
LRU is not affordable in a full-associative cache" (Section V).  PseudoLRU
and Random are provided as drop-in alternatives for ablation studies, as the
paper notes other low-cost policies can be integrated.

Each policy tracks its own per-set metadata; the :class:`~repro.cache.
tag_array.TagArray` drives it through three hooks:

* ``on_fill(set_idx, way)``   -- a block was installed into a way,
* ``on_access(set_idx, way)`` -- a block was hit,
* ``select_victim(set_idx, candidates)`` -- choose a way to evict among the
  candidate ways (ways holding reserved, in-flight lines are excluded by the
  caller).
"""

from __future__ import annotations

import abc
import random
from heapq import heapify, heappop, heappush
from typing import Iterable, Optional, Sequence

__all__ = [
    "FIFOPolicy", "LRUPolicy", "PseudoLRUPolicy", "RandomPolicy",
    "ReplacementPolicy", "known_policies", "make_replacement_policy",
]

#: associativity at which stamp-based policies switch from a linear
#: minimum scan to a lazily-invalidated min-heap for whole-set victim
#: selection (the 256-way FA-SRAM and 512-way approximated-FA STT banks
#: are the targets; tiny 2/4-way sets scan faster than they heap)
_HEAP_ASSOC_THRESHOLD = 16


class ReplacementPolicy(abc.ABC):
    """Interface implemented by all replacement policies."""

    name: str = "abstract"

    def __init__(self, num_sets: int, assoc: int) -> None:
        if num_sets < 1 or assoc < 1:
            raise ValueError("num_sets and assoc must both be >= 1")
        self.num_sets = num_sets
        self.assoc = assoc

    @abc.abstractmethod
    def on_fill(self, set_idx: int, way: int) -> None:
        """Record that a new block was installed into (set_idx, way)."""

    @abc.abstractmethod
    def on_access(self, set_idx: int, way: int) -> None:
        """Record a hit on (set_idx, way)."""

    @abc.abstractmethod
    def select_victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        """Pick the way to evict among *candidates* (never empty)."""

    def select_victim_all(self, set_idx: int) -> int:
        """Pick a victim when *every* way is a candidate.

        Semantically identical to ``select_victim(set_idx,
        range(assoc))`` -- the steady-state fast path the tag array takes
        once a set is full and no reservation is pending, which lets
        stamp-based policies answer from an oldest-stamp heap instead of
        scanning the whole (possibly 512-way) set.
        """
        return self.select_victim(set_idx, range(self.assoc))

    def on_reserve(self, set_idx: int, way: int) -> None:
        """A way entered the reserved (fill-in-flight) state.

        Reserved ways are never victim candidates; stamp-based policies
        use this hook to retire the way's heap entry until the completing
        fill restamps it.  Default: nothing.
        """

    def select_victim_scan(self, set_idx: int, lines) -> Optional[int]:
        """Pick a victim among the non-reserved ways of a full set.

        *lines* is the set's :class:`~repro.cache.tag_array.CacheLine`
        list; ways whose line is reserved (fill in flight) are not
        eligible.  Returns None when every way is reserved.  Semantically
        identical to filtering candidates and calling
        :meth:`select_victim`; stamp-based policies override this to
        answer from the heap in O(log n).
        """
        candidates = [w for w, line in enumerate(lines) if not line.reserved]
        if not candidates:
            return None
        return self.select_victim(set_idx, candidates)


class _StampedPolicy(ReplacementPolicy):
    """Shared machinery for stamp-ordered policies (LRU, FIFO).

    Stamps are unique and monotonically increasing, so "the way with the
    minimum stamp" is a deterministic victim.  For wide sets a per-set
    min-heap of ``(stamp, way)`` entries answers
    :meth:`select_victim_all` in O(log n): entries are pushed on every
    (re)stamp and invalidated lazily -- an entry is stale exactly when
    the way has been restamped since it was pushed.
    """

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        self._tick = 0
        self._stamps = [[-1] * assoc for _ in range(num_sets)]
        self._use_heap = assoc >= _HEAP_ASSOC_THRESHOLD
        self._heaps = (
            [[] for _ in range(num_sets)] if self._use_heap else None
        )

    def _stamp(self, set_idx: int, way: int) -> None:
        self._tick += 1
        self._stamps[set_idx][way] = self._tick
        if self._use_heap:
            heap = self._heaps[set_idx]
            heappush(heap, (self._tick, way))
            # Stale entries are normally dropped during victim selection,
            # but hit-dominated phases (LRU restamps on every access and
            # a high-hit-rate set rarely evicts) would grow the heap
            # O(accesses).  Rebuilding from the live stamps keeps it
            # bounded at O(assoc) amortized-O(1) per stamp, and cannot
            # change any selection: live entries are identical either way.
            if len(heap) > 2 * self.assoc + 64:
                self._heaps[set_idx] = [
                    (stamp, way_)
                    for way_, stamp in enumerate(self._stamps[set_idx])
                    if stamp >= 1
                ]
                heapify(self._heaps[set_idx])

    def select_victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        return min(candidates, key=self._stamps[set_idx].__getitem__)

    def select_victim_all(self, set_idx: int) -> int:
        stamps = self._stamps[set_idx]
        if self._use_heap:
            heap = self._heaps[set_idx]
            while heap:
                stamp, way = heap[0]
                if stamps[way] == stamp:
                    return way
                heappop(heap)
        return min(range(self.assoc), key=stamps.__getitem__)

    def on_reserve(self, set_idx: int, way: int) -> None:
        # Retire the way's live heap entry: reserved ways must never win
        # a victim selection, and the completing fill restamps them.  The
        # sentinel only has to mismatch every pushed stamp (stamps are
        # >= 1); the listcomp paths never read a reserved way's stamp.
        self._stamps[set_idx][way] = -1

    def select_victim_scan(self, set_idx: int, lines) -> Optional[int]:
        if not self._use_heap:
            return super().select_victim_scan(set_idx, lines)
        # reserved ways hold no live entry (see on_reserve), so the first
        # live entry is the oldest-stamped eligible way
        heap = self._heaps[set_idx]
        stamps = self._stamps[set_idx]
        while heap:
            stamp, way = heap[0]
            if stamps[way] == stamp:
                return way
            heappop(heap)
        return None


class LRUPolicy(_StampedPolicy):
    """Least-recently-used, tracked with a per-line logical timestamp."""

    name = "lru"

    def on_fill(self, set_idx: int, way: int) -> None:
        self._stamp(set_idx, way)

    def on_access(self, set_idx: int, way: int) -> None:
        self._stamp(set_idx, way)


class FIFOPolicy(_StampedPolicy):
    """First-in-first-out: evict the oldest installed block.

    Hits do not refresh a block's age, which is what makes FIFO cheap enough
    for the 512-way approximated fully-associative STT-MRAM bank.
    """

    name = "fifo"

    def on_fill(self, set_idx: int, way: int) -> None:
        self._stamp(set_idx, way)

    def on_access(self, set_idx: int, way: int) -> None:
        # FIFO ignores hits by definition.
        pass


class PseudoLRUPolicy(ReplacementPolicy):
    """Tree-based pseudo-LRU (the classic one-bit-per-node binary tree).

    Only exact for power-of-two associativity; other associativities round
    the tree up and clamp the selected way, which preserves the "recently
    used ways are protected" behaviour that matters for simulation.
    """

    name = "plru"

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        self._levels = max(1, (assoc - 1).bit_length())
        self._bits = [[0] * ((1 << self._levels) - 1) for _ in range(num_sets)]

    def _touch(self, set_idx: int, way: int) -> None:
        bits = self._bits[set_idx]
        node = 0
        for level in range(self._levels):
            bit = (way >> (self._levels - 1 - level)) & 1
            # Point the node away from the touched way.
            bits[node] = 1 - bit
            node = 2 * node + 1 + bit

    def on_fill(self, set_idx: int, way: int) -> None:
        self._touch(set_idx, way)

    def on_access(self, set_idx: int, way: int) -> None:
        self._touch(set_idx, way)

    def select_victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        bits = self._bits[set_idx]
        node = 0
        way = 0
        for level in range(self._levels):
            bit = bits[node]
            way = (way << 1) | bit
            node = 2 * node + 1 + bit
        candidate_set = set(candidates)
        if way in candidate_set:
            return way
        # The tree pointed at a way we may not evict (reserved line or
        # non-power-of-two associativity); fall back to the lowest candidate.
        return min(candidates)


class RandomPolicy(ReplacementPolicy):
    """Seeded uniform-random victim selection (deterministic for tests)."""

    name = "random"

    def __init__(self, num_sets: int, assoc: int, seed: int = 0xF05E) -> None:
        super().__init__(num_sets, assoc)
        self._rng = random.Random(seed)

    def on_fill(self, set_idx: int, way: int) -> None:
        pass

    def on_access(self, set_idx: int, way: int) -> None:
        pass

    def select_victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        ordered = sorted(candidates)
        return ordered[self._rng.randrange(len(ordered))]


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "plru": PseudoLRUPolicy,
    "random": RandomPolicy,
}


def make_replacement_policy(
    name: str, num_sets: int, assoc: int
) -> ReplacementPolicy:
    """Instantiate a replacement policy by name.

    Args:
        name: one of ``lru``, ``fifo``, ``plru``, ``random``.
        num_sets: number of sets in the owning tag array.
        assoc: ways per set.

    Raises:
        ValueError: when *name* is not a known policy.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown replacement policy {name!r}; known: {known}")
    return cls(num_sets, assoc)


def known_policies() -> Iterable[str]:
    """Names accepted by :func:`make_replacement_policy`."""
    return sorted(_POLICIES)
