"""Cache replacement policies.

The paper uses LRU for the SRAM bank and set-associative baselines, and FIFO
for the fully-associative STT-MRAM bank because "the circuit complexity of
LRU is not affordable in a full-associative cache" (Section V).  PseudoLRU
and Random are provided as drop-in alternatives for ablation studies, as the
paper notes other low-cost policies can be integrated.

Each policy tracks its own per-set metadata; the :class:`~repro.cache.
tag_array.TagArray` drives it through three hooks:

* ``on_fill(set_idx, way)``   -- a block was installed into a way,
* ``on_access(set_idx, way)`` -- a block was hit,
* ``select_victim(set_idx, candidates)`` -- choose a way to evict among the
  candidate ways (ways holding reserved, in-flight lines are excluded by the
  caller).
"""

from __future__ import annotations

import abc
import random
from typing import Iterable, Sequence


class ReplacementPolicy(abc.ABC):
    """Interface implemented by all replacement policies."""

    name: str = "abstract"

    def __init__(self, num_sets: int, assoc: int) -> None:
        if num_sets < 1 or assoc < 1:
            raise ValueError("num_sets and assoc must both be >= 1")
        self.num_sets = num_sets
        self.assoc = assoc

    @abc.abstractmethod
    def on_fill(self, set_idx: int, way: int) -> None:
        """Record that a new block was installed into (set_idx, way)."""

    @abc.abstractmethod
    def on_access(self, set_idx: int, way: int) -> None:
        """Record a hit on (set_idx, way)."""

    @abc.abstractmethod
    def select_victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        """Pick the way to evict among *candidates* (never empty)."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used, tracked with a per-line logical timestamp."""

    name = "lru"

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        self._tick = 0
        self._last_use = [[-1] * assoc for _ in range(num_sets)]

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def on_fill(self, set_idx: int, way: int) -> None:
        self._last_use[set_idx][way] = self._next_tick()

    def on_access(self, set_idx: int, way: int) -> None:
        self._last_use[set_idx][way] = self._next_tick()

    def select_victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        stamps = self._last_use[set_idx]
        return min(candidates, key=lambda way: stamps[way])


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: evict the oldest installed block.

    Hits do not refresh a block's age, which is what makes FIFO cheap enough
    for the 512-way approximated fully-associative STT-MRAM bank.
    """

    name = "fifo"

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        self._tick = 0
        self._fill_time = [[-1] * assoc for _ in range(num_sets)]

    def on_fill(self, set_idx: int, way: int) -> None:
        self._tick += 1
        self._fill_time[set_idx][way] = self._tick

    def on_access(self, set_idx: int, way: int) -> None:
        # FIFO ignores hits by definition.
        pass

    def select_victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        stamps = self._fill_time[set_idx]
        return min(candidates, key=lambda way: stamps[way])


class PseudoLRUPolicy(ReplacementPolicy):
    """Tree-based pseudo-LRU (the classic one-bit-per-node binary tree).

    Only exact for power-of-two associativity; other associativities round
    the tree up and clamp the selected way, which preserves the "recently
    used ways are protected" behaviour that matters for simulation.
    """

    name = "plru"

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        self._levels = max(1, (assoc - 1).bit_length())
        self._bits = [[0] * ((1 << self._levels) - 1) for _ in range(num_sets)]

    def _touch(self, set_idx: int, way: int) -> None:
        bits = self._bits[set_idx]
        node = 0
        for level in range(self._levels):
            bit = (way >> (self._levels - 1 - level)) & 1
            # Point the node away from the touched way.
            bits[node] = 1 - bit
            node = 2 * node + 1 + bit

    def on_fill(self, set_idx: int, way: int) -> None:
        self._touch(set_idx, way)

    def on_access(self, set_idx: int, way: int) -> None:
        self._touch(set_idx, way)

    def select_victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        bits = self._bits[set_idx]
        node = 0
        way = 0
        for level in range(self._levels):
            bit = bits[node]
            way = (way << 1) | bit
            node = 2 * node + 1 + bit
        candidate_set = set(candidates)
        if way in candidate_set:
            return way
        # The tree pointed at a way we may not evict (reserved line or
        # non-power-of-two associativity); fall back to the lowest candidate.
        return min(candidates)


class RandomPolicy(ReplacementPolicy):
    """Seeded uniform-random victim selection (deterministic for tests)."""

    name = "random"

    def __init__(self, num_sets: int, assoc: int, seed: int = 0xF05E) -> None:
        super().__init__(num_sets, assoc)
        self._rng = random.Random(seed)

    def on_fill(self, set_idx: int, way: int) -> None:
        pass

    def on_access(self, set_idx: int, way: int) -> None:
        pass

    def select_victim(self, set_idx: int, candidates: Sequence[int]) -> int:
        ordered = sorted(candidates)
        return ordered[self._rng.randrange(len(ordered))]


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "plru": PseudoLRUPolicy,
    "random": RandomPolicy,
}


def make_replacement_policy(
    name: str, num_sets: int, assoc: int
) -> ReplacementPolicy:
    """Instantiate a replacement policy by name.

    Args:
        name: one of ``lru``, ``fifo``, ``plru``, ``random``.
        num_sets: number of sets in the owning tag array.
        assoc: ways per set.

    Raises:
        ValueError: when *name* is not a known policy.
    """
    try:
        cls = _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise ValueError(f"unknown replacement policy {name!r}; known: {known}")
    return cls(num_sets, assoc)


def known_policies() -> Iterable[str]:
    """Names accepted by :func:`make_replacement_policy`."""
    return sorted(_POLICIES)
