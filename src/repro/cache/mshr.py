"""Miss Status Holding Registers (MSHR).

The L1D in GPUs is non-blocking: a miss allocates an MSHR entry and the SM
keeps issuing from other warps.  Secondary misses to the same block merge
into the primary entry instead of generating additional off-chip traffic.

FUSE extends the classic MSHR table (Farkas et al.) with *destination bits*
that record whether the pending fill should land in the SRAM bank or the
STT-MRAM bank of the heterogeneous L1D (Section IV-A, Figure 8).  The
``destination`` field below carries that information; homogeneous caches
simply leave it at its default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.request import MemoryRequest

__all__ = [
    "MSHR", "MSHREntry",
]


@dataclass(slots=True)
class MSHREntry:
    """One in-flight miss: the primary request plus merged secondaries."""

    block_addr: int
    requests: List[MemoryRequest] = field(default_factory=list)
    destination: str = "sram"
    allocate_cycle: int = 0
    #: metadata slot for cache engines (e.g. reserved way index)
    reserved_way: int = -1
    reserved_set: int = -1

    @property
    def merged_count(self) -> int:
        """Number of requests merged beyond the primary one."""
        return max(0, len(self.requests) - 1)


class MSHR:
    """A bounded table of in-flight misses keyed by block address.

    Args:
        num_entries: maximum simultaneous outstanding blocks (GPGPU-Sim's
            default for Fermi-class L1Ds is 32).
        max_merged: maximum requests merged per entry, including the primary
            (8 matches GPGPU-Sim's ``mshr_max_merge``).
    """

    def __init__(self, num_entries: int = 32, max_merged: int = 8) -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be >= 1")
        if max_merged < 1:
            raise ValueError("max_merged must be >= 1")
        self.num_entries = num_entries
        self.max_merged = max_merged
        self._entries: Dict[int, MSHREntry] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def full(self) -> bool:
        """True when no new primary miss can be accepted."""
        return len(self._entries) >= self.num_entries

    def probe(self, block_addr: int) -> bool:
        """True when *block_addr* already has an outstanding miss."""
        return block_addr in self._entries

    def get(self, block_addr: int) -> Optional[MSHREntry]:
        """Return the entry for *block_addr*, or None."""
        return self._entries.get(block_addr)

    def can_merge(self, block_addr: int) -> bool:
        """True when a secondary miss to *block_addr* can be merged."""
        entry = self._entries.get(block_addr)
        if entry is None:
            return False
        return len(entry.requests) < self.max_merged

    # ------------------------------------------------------------------
    def allocate(
        self,
        block_addr: int,
        request: MemoryRequest,
        destination: str = "sram",
        cycle: int = 0,
    ) -> MSHREntry:
        """Allocate a new entry for a primary miss.

        Raises:
            RuntimeError: when the table is full or the block is already
                pending (callers must check ``full()`` / ``probe()`` first;
                this keeps the check-then-commit discipline explicit).
        """
        if self.full():
            raise RuntimeError("MSHR allocate() on a full table")
        if block_addr in self._entries:
            raise RuntimeError(f"MSHR already tracks block 0x{block_addr:x}")
        entry = MSHREntry(
            block_addr=block_addr,
            requests=[request],
            destination=destination,
            allocate_cycle=cycle,
        )
        self._entries[block_addr] = entry
        return entry

    def merge(self, block_addr: int, request: MemoryRequest) -> MSHREntry:
        """Merge a secondary miss into an existing entry.

        Raises:
            RuntimeError: when the entry does not exist or is already at its
                merge capacity.
        """
        entry = self._entries.get(block_addr)
        if entry is None:
            raise RuntimeError(f"MSHR merge() without entry 0x{block_addr:x}")
        if len(entry.requests) >= self.max_merged:
            raise RuntimeError(f"MSHR entry 0x{block_addr:x} is merge-full")
        entry.requests.append(request)
        return entry

    def release(self, block_addr: int) -> MSHREntry:
        """Remove and return the entry when its fill response arrives.

        Raises:
            KeyError: when no entry exists for *block_addr*.
        """
        return self._entries.pop(block_addr)

    def outstanding_blocks(self) -> List[int]:
        """Block addresses currently in flight (for debugging/tests)."""
        return list(self._entries)
