"""``By-NVM``: pure STT-MRAM L1D with dead-write bypassing.

Table I's ``By-NVM`` configuration spends the whole area budget on
STT-MRAM (128 KB, 256 sets x 4 ways) and integrates a dead-write predictor
in the spirit of DASCA (Ahn et al., HPCA 2014): a *dead write* is a block
that is written once (filled) but never re-referenced before eviction.
Filling such blocks into STT-MRAM wastes a 5-cycle, high-energy write, so
predicted-dead requests bypass the L1D entirely and are served from L2.

The predictor reuses the PC-signature sampler substrate of
:mod:`repro.core.sampler`: blocks from PCs whose sampled lines keep getting
evicted with their ``U`` (used) bit clear accumulate high counter values
and are classified dead.  Table II's per-workload bypass ratios are the
emergent output of this predictor and are reproduced by
``benchmarks/bench_table2_apki.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.basecache import BaseCache
from repro.cache.interface import AccessOutcome, AccessResult
from repro.cache.request import BLOCK_SIZE, MemoryRequest
from repro.cache.tag_array import EvictedLine
from repro.core.sampler import SamplerTable, SaturatingCounterTable, pc_signature

__all__ = [
    "ByNVMCache", "DeadWritePredictor",
]


class DeadWritePredictor:
    """PC-indexed dead-write predictor (DASCA-style, simplified).

    Args:
        dead_threshold: counter value at or above which a PC's blocks are
            predicted dead.  Counters start at ``init_value`` (8) and move
            up on unused evictions, down on sampler re-references.
        sampled_warps: warps observed by the sampler.
    """

    def __init__(
        self,
        table_entries: int = 1024,
        dead_threshold: int = 10,
        counter_bits: int = 4,
        init_value: int = 8,
        sampled_warps=(0, 12, 24, 36),
    ) -> None:
        self.dead_threshold = dead_threshold
        self.sampler = SamplerTable(sampled_warps=sampled_warps)
        self.table = SaturatingCounterTable(
            entries=table_entries,
            counter_bits=counter_bits,
            init_value=init_value,
        )

    def observe(self, request: MemoryRequest) -> None:
        """Train on one request (no-op for non-sampled warps)."""
        self.observe_raw(
            request.warp_id, request.block_addr, request.pc,
            request.is_write,
        )

    def observe_raw(
        self, warp_id: int, block_addr: int, pc: int, is_write: bool
    ) -> None:
        """Request-free form of :meth:`observe` (fast-backend bulk path)."""
        observation = self.sampler.observe(
            warp_id, block_addr, pc, is_write
        )
        if observation is None:
            return
        if observation.hit:
            # Re-reference: blocks from this PC are alive.
            self.table.decrement(observation.hit_signature)
        elif observation.evicted_signature is not None and not observation.evicted_used:
            # Evicted without reuse: blocks from that PC look dead.
            self.table.increment(observation.evicted_signature)

    def is_dead(self, pc: int) -> bool:
        """True when a block fetched by *pc* should bypass the cache."""
        return self.table.counter(pc_signature(pc)) >= self.dead_threshold


class ByNVMCache(BaseCache):
    """128 KB pure STT-MRAM L1D with dead-write bypass (``By-NVM``)."""

    def __init__(
        self,
        size_kb: int = 128,
        assoc: int = 4,
        read_latency: int = 1,
        write_latency: int = 5,
        mshr_entries: int = 32,
        mshr_max_merge: int = 8,
        dead_threshold: int = 10,
        sampled_warps=(0, 12, 24, 36),
        name: str = "By-NVM",
    ) -> None:
        num_lines = size_kb * 1024 // BLOCK_SIZE
        if num_lines % assoc:
            raise ValueError(f"{size_kb}KB not divisible into {assoc}-way sets")
        super().__init__(
            num_sets=num_lines // assoc,
            assoc=assoc,
            read_latency=read_latency,
            write_latency=write_latency,
            write_occupancy=write_latency,
            replacement="lru",
            mshr_entries=mshr_entries,
            mshr_max_merge=mshr_max_merge,
            technology="stt",
            name=name,
        )
        self.predictor = DeadWritePredictor(
            dead_threshold=dead_threshold, sampled_warps=sampled_warps
        )

    def _observe(self, request: MemoryRequest) -> None:
        self.predictor.observe(request)

    def _observe_bulk(
        self, txns, start: int, end: int, pc: int, warp_id: int,
        is_write: bool,
    ) -> None:
        observe = self.predictor.observe_raw
        for k in range(start, end):
            observe(warp_id, txns[k], pc, is_write)

    def _access_impl(self, request: MemoryRequest, cycle: int) -> AccessResult:
        block = request.block_addr

        # A bypass is only legal when the block is not already resident or
        # pending -- otherwise we would create a stale copy.
        _, way = self.tags.lookup(block)
        if way is None and not self.mshr.probe(block):
            if self.predictor.is_dead(request.pc):
                self.stats.tag_lookups += 1
                self.stats.bypasses += 1
                return AccessResult(
                    AccessOutcome.MISS_BYPASS, cycle, (), block
                )
        return super()._access_impl(request, cycle)

    def _score_eviction(self, evicted: EvictedLine) -> None:
        """Track how many resident blocks really were dead (diagnostics)."""
        if evicted.reads_observed == 0 and evicted.writes_observed == 0:
            self.stats.pred_false += 1  # kept a block that was never reused
        else:
            self.stats.pred_true += 1
