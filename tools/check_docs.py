#!/usr/bin/env python3
"""Link-check the repository's markdown documentation.

Scans the given markdown files (default: README.md, ARCHITECTURE.md and
docs/*.md) for inline links/images ``[text](target)`` and verifies that
every relative target exists on disk.  External (http/https/mailto)
links and pure in-page anchors are skipped; a ``path#fragment`` target
is checked for the path only.

Exit status 0 when everything resolves, 1 with a per-link report
otherwise (the CI docs job runs this).

Usage::

    python tools/check_docs.py [file.md ...]
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Iterable, List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: inline markdown link/image: [text](target) / ![alt](target).
#: targets never contain whitespace in this repo's docs, which keeps the
#: pattern from swallowing prose parentheses.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: schemes (and in-page anchors) that are not filesystem paths
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def default_files() -> List[pathlib.Path]:
    files = [REPO_ROOT / "README.md", REPO_ROOT / "ARCHITECTURE.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def strip_code(text: str) -> str:
    """Drop fenced code blocks and inline code: shell snippets routinely
    contain ``[...](...)``-shaped globs that are not links."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def check_file(path: pathlib.Path) -> List[Tuple[str, str]]:
    """Broken links in one file as (target, reason) pairs."""
    broken = []
    for target in LINK.findall(strip_code(path.read_text())):
        if target.startswith(SKIP_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append((target, f"missing: {resolved}"))
    return broken


def main(argv: Iterable[str]) -> int:
    args = list(argv)
    files = [pathlib.Path(a) for a in args] if args else default_files()
    failures = 0
    for path in files:
        if not path.exists():
            print(f"FAIL {path}: file does not exist")
            failures += 1
            continue
        broken = check_file(path)
        for target, reason in broken:
            print(f"FAIL {path}: [{target}] {reason}")
        failures += len(broken)
        if not broken:
            print(f"ok   {path}")
    if failures:
        print(f"\n{failures} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
